lib/workloads/gauss.mli: Flb_taskgraph Taskgraph
