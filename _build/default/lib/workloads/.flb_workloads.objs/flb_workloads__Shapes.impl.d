lib/workloads/shapes.ml: Array Flb_taskgraph Taskgraph
