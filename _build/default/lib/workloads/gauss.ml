open! Flb_taskgraph

let num_tasks ~matrix_size:n =
  if n < 2 then invalid_arg "Gauss.num_tasks: matrix_size must be at least 2";
  (n - 1) * (n + 2) / 2

let structure ~matrix_size:n =
  ignore (num_tasks ~matrix_size:n);
  let b = Taskgraph.Builder.create () in
  let update = Array.make_matrix (n - 1) n (-1) in
  for k = 0 to n - 2 do
    let pivot = Taskgraph.Builder.add_task b ~comp:1.0 in
    (* The pivot row of stage k was produced by every stage-(k-1) update
       (elimination needs the full reduced submatrix). *)
    if k > 0 then
      for i = k to n - 1 do
        Taskgraph.Builder.add_edge b ~src:update.(k - 1).(i) ~dst:pivot ~comm:1.0
      done;
    for i = k + 1 to n - 1 do
      update.(k).(i) <- Taskgraph.Builder.add_task b ~comp:1.0;
      Taskgraph.Builder.add_edge b ~src:pivot ~dst:update.(k).(i) ~comm:1.0
    done
  done;
  Taskgraph.Builder.build b
