open! Flb_taskgraph

(** Tiled Cholesky factorization task graph (extension workload; the
    third classic dense-linear-algebra benchmark alongside {!Lu} and
    {!Gauss}).

    Right-looking tiled algorithm on a [tiles x tiles] lower-triangular
    matrix: each step [k] runs POTRF on the diagonal tile, TRSM on every
    tile below it, then SYRK/GEMM updates on the remaining triangle.
    Denser and more parallel than {!Lu} at the same matrix size. *)

val structure : tiles:int -> Taskgraph.t
(** @raise Invalid_argument if [tiles < 1]. *)

val num_tasks : tiles:int -> int

val tiles_for_tasks : int -> int
(** Smallest tile count reaching the given task count. *)
