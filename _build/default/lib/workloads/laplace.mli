open! Flb_taskgraph

(** Jacobi Laplace-equation solver task graph ("Laplace" in the paper).

    An [n x n] grid relaxed for a fixed number of sweeps; the task for
    cell [(i, j)] at sweep [s] reads the cell and its 4-point
    neighbourhood from sweep [s-1]. Interior regularity with join-heavy
    borders gives the moderate speedup the paper reports. *)

val structure : grid:int -> sweeps:int -> Taskgraph.t
(** [grid * grid * sweeps] unit-cost tasks.
    @raise Invalid_argument if [grid < 1] or [sweeps < 1]. *)

val num_tasks : grid:int -> sweeps:int -> int

val dims_for_tasks : int -> int * int
(** [(grid, sweeps)] with [grid * grid * sweeps] at least the given task
    count, keeping roughly [sweeps = grid] as in wavefront-style
    studies. The paper's scale (about 2000 tasks) maps to a 13x13 grid
    and 12 sweeps (2028 tasks). *)
