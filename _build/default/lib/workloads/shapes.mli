open! Flb_taskgraph

(** Small parametric graph families with known analytic properties, used
    throughout the test suite: their widths, critical paths and optimal
    schedule lengths are easy to state in closed form. Unit weights
    throughout; use {!Weights.assign} for random costs. *)

val chain : length:int -> Taskgraph.t
(** [t0 -> t1 -> ... ] — width 1, no parallelism.
    @raise Invalid_argument if [length < 1]. *)

val independent : tasks:int -> Taskgraph.t
(** No edges — width = V, embarrassingly parallel. *)

val fork_join : branches:int -> stages:int -> Taskgraph.t
(** Repeated fork–join: a source forks to [branches] tasks that join
    into a sink, [stages] times; consecutive stages share the join/fork
    task. Width = [branches]. *)

val out_tree : branching:int -> depth:int -> Taskgraph.t
(** Complete [branching]-ary broadcast tree of the given depth
    (depth 0 is a single task). *)

val in_tree : branching:int -> depth:int -> Taskgraph.t
(** Mirror image: a reduction tree. *)

val parallel_chains : count:int -> length:int -> Taskgraph.t
(** [count] independent chains of [length] tasks each — width exactly
    [count]; the canonical input for grain-packing studies
    ({!Coarsen.merge_chains} collapses each chain to one task). *)

val diamond : size:int -> Taskgraph.t
(** Wavefront grid: task [(i, j)] precedes [(i+1, j)] and [(i, j+1)],
    [0 <= i, j < size]. Width = [size]. *)
