open! Flb_taskgraph
open! Flb_prelude

(** Random cost assignment at a target communication-to-computation
    ratio.

    The paper varies task-graph granularity by the CCR (0.2 and 5.0) and
    draws execution times and communication delays i.i.d. from "a
    uniform distribution with unit coefficient of variation". A uniform
    distribution on [\[0, 2μ\]] has CoV 1/√3, not 1, so the phrasing is
    self-contradictory; we default to the uniform reading and expose an
    exponential alternative whose CoV is exactly 1 (EXPERIMENTS.md
    reports the sensitivity). *)

type distribution =
  | Constant  (** every cost equals its mean *)
  | Uniform  (** uniform on [\[0, 2 mean\]], CoV = 1/√3 *)
  | Exponential  (** exponential with the given mean, CoV = 1 *)

val sample : distribution -> Rng.t -> mean:float -> float
(** One draw; non-negative. *)

val assign :
  ?dist:distribution ->
  ?mean_comp:float ->
  Taskgraph.t ->
  rng:Rng.t ->
  ccr:float ->
  Taskgraph.t
(** [assign g ~rng ~ccr] keeps the structure of [g] and redraws every
    cost: computation with mean [mean_comp] (default 1.0), communication
    with mean [mean_comp *. ccr]. The realized CCR of the result is
    random around the target. [dist] defaults to [Uniform].
    @raise Invalid_argument if [ccr] or [mean_comp] is negative. *)

val scale_comm : Taskgraph.t -> factor:float -> Taskgraph.t
(** Multiplies every communication cost by [factor]; used to retarget an
    existing weighted graph to a different granularity without redrawing
    weights. *)
