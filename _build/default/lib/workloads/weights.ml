open! Flb_taskgraph
open! Flb_prelude

type distribution = Constant | Uniform | Exponential

let sample dist rng ~mean =
  match dist with
  | Constant -> mean
  | Uniform -> Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. mean)
  | Exponential -> Rng.exponential rng ~mean

let rebuild g ~comp_of ~comm_of =
  let n = Taskgraph.num_tasks g in
  let comp = Array.init n comp_of in
  let edges = ref [] in
  Taskgraph.iter_edges (fun src dst w -> edges := (src, dst, comm_of src dst w) :: !edges) g;
  Taskgraph.of_arrays ~comp ~edges:(Array.of_list (List.rev !edges))

let assign ?(dist = Uniform) ?(mean_comp = 1.0) g ~rng ~ccr =
  if ccr < 0.0 then invalid_arg "Weights.assign: negative ccr";
  if mean_comp < 0.0 then invalid_arg "Weights.assign: negative mean_comp";
  rebuild g
    ~comp_of:(fun _ -> sample dist rng ~mean:mean_comp)
    ~comm_of:(fun _ _ _ -> sample dist rng ~mean:(mean_comp *. ccr))

let scale_comm g ~factor =
  if factor < 0.0 then invalid_arg "Weights.scale_comm: negative factor";
  rebuild g ~comp_of:(Taskgraph.comp g) ~comm_of:(fun _ _ w -> w *. factor)
