open! Flb_taskgraph

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec loop acc n = if n = 1 then acc else loop (acc + 1) (n / 2) in
  loop 0 n

let num_tasks ~points =
  if not (is_power_of_two points) || points < 2 then
    invalid_arg "Fft.num_tasks: points must be a power of two, at least 2";
  points * (log2 points + 1)

let structure ~points:n =
  ignore (num_tasks ~points:n);
  let stages = log2 n in
  let b = Taskgraph.Builder.create ~expected_tasks:(n * (stages + 1)) () in
  let id = Array.make_matrix (stages + 1) n (-1) in
  for s = 0 to stages do
    for i = 0 to n - 1 do
      id.(s).(i) <- Taskgraph.Builder.add_task b ~comp:1.0;
      if s > 0 then begin
        let partner = i lxor (1 lsl (s - 1)) in
        Taskgraph.Builder.add_edge b ~src:id.(s - 1).(i) ~dst:id.(s).(i) ~comm:1.0;
        Taskgraph.Builder.add_edge b ~src:id.(s - 1).(partner) ~dst:id.(s).(i)
          ~comm:1.0
      end
    done
  done;
  Taskgraph.Builder.build b

let points_for_tasks target =
  let rec search n = if num_tasks ~points:n >= target then n else search (2 * n) in
  search 2
