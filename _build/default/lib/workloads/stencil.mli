open! Flb_taskgraph

(** One-dimensional 3-point stencil task graph ("Stencil" in the paper).

    [width] cells iterated for [layers] steps; cell [i] at layer [s]
    reads cells [i-1], [i], [i+1] of layer [s-1] (clamped at the
    borders). Fully regular, so near-linear speedup is achievable
    (Fig. 3's best case). *)

val structure : width:int -> layers:int -> Taskgraph.t
(** [width * layers] unit-cost tasks.
    @raise Invalid_argument if [width < 1] or [layers < 1]. *)

val num_tasks : width:int -> layers:int -> int

val dims_for_tasks : int -> int * int
(** Square-ish [(width, layers)] reaching at least the given task count
    (45 x 45 = 2025 at the paper's scale). *)
