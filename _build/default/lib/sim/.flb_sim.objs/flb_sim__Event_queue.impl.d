lib/sim/event_queue.ml: Flb_heap Float Hashtbl Int Option Printf
