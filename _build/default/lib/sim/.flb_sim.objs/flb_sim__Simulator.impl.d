lib/sim/simulator.ml: Array Event_queue Flb_platform Flb_taskgraph Float List Machine Option Queue Result Schedule Taskgraph Topo
