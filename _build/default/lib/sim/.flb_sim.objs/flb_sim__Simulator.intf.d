lib/sim/simulator.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
