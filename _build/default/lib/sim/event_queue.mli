(** Time-ordered event queue for discrete-event simulation.

    Events at equal timestamps are delivered in insertion order (a
    monotone sequence number breaks ties), which makes simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a non-finite or negative time. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when the queue is empty. *)

val peek_time : 'a t -> float option

val length : 'a t -> int

val is_empty : 'a t -> bool
