(* A binary heap of (time, sequence) keys. The sequence number both breaks
   ties deterministically (FIFO among simultaneous events) and makes the
   key order total. The payload lives in a parallel store indexed by
   sequence number to keep the heap monomorphic in its key. *)

module Keyed = Flb_heap.Binary_heap.Make (struct
  type t = float * int

  let compare (t1, s1) (t2, s2) =
    let c = Float.compare t1 t2 in
    if c <> 0 then c else Int.compare s1 s2
end)

type 'a t = {
  heap : Keyed.t;
  payloads : (int, 'a) Hashtbl.t;
  mutable next_seq : int;
}

let create () = { heap = Keyed.create (); payloads = Hashtbl.create 64; next_seq = 0 }

let add q ~time payload =
  if (not (Float.is_finite time)) || time < 0.0 then
    invalid_arg (Printf.sprintf "Event_queue.add: bad time %g" time);
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  Hashtbl.replace q.payloads seq payload;
  Keyed.add q.heap (time, seq)

let pop q =
  match Keyed.pop q.heap with
  | None -> None
  | Some (time, seq) ->
    let payload = Hashtbl.find q.payloads seq in
    Hashtbl.remove q.payloads seq;
    Some (time, payload)

let peek_time q = Option.map fst (Keyed.min_elt q.heap)

let length q = Keyed.length q.heap

let is_empty q = Keyed.is_empty q.heap
