lib/core/flb_trace.ml: Buffer Example Flb Flb_platform Flb_taskgraph Float List Machine Printf String Taskgraph
