lib/core/flb_trace.mli: Flb Flb_platform Flb_taskgraph Machine Schedule Taskgraph
