lib/core/flb_check.mli: Flb Flb_platform Flb_taskgraph Format Machine Schedule Taskgraph
