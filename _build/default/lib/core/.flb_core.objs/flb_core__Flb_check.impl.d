lib/core/flb_check.ml: Flb Flb_platform Flb_taskgraph Format List Machine Schedule Taskgraph
