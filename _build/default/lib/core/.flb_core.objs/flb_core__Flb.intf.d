lib/core/flb.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
