open! Flb_taskgraph
open! Flb_platform

(** Run-time verification of the paper's Theorem 3.

    The theorem states that the two candidate pairs FLB compares always
    contain a globally earliest-starting (ready task, processor) pair.
    This module re-runs that claim against a brute-force scan — every
    ready task tentatively placed on every processor — at each
    iteration, which is exactly what ETF pays O(W P) per iteration to
    compute. Used in tests and available for diagnostics. *)

type violation = {
  iteration : int;
  chosen : Flb.candidate;
  best : Flb.candidate;  (** a strictly earlier pair the scan found *)
}

val pp_violation : Format.formatter -> violation -> unit

val run_checked :
  ?options:Flb.options ->
  Taskgraph.t ->
  Machine.t ->
  (Schedule.t, violation list) result
(** Schedules with FLB while cross-checking every iteration; returns the
    schedule if no iteration ever chose a pair with a later start time
    than the brute-force optimum, and all violations otherwise.

    On the paper's uniform (clique) machine this must always return
    [Ok] — that is Theorem 3, and the test suite enforces it. On
    non-uniform machines (the mesh extension) FLB is only a heuristic
    and violations are expected; use {!measure} there. *)

(** Per-run optimality statistics, for quantifying FLB on machines
    where Theorem 3 does not apply. *)
type report = {
  iterations : int;
  suboptimal_steps : int;
      (** iterations whose realized start exceeded the brute-force
          minimum EST *)
  mean_ratio : float;  (** mean of (realized start / optimal EST), over
                           iterations with a positive optimum *)
  max_ratio : float;
}

val measure : ?options:Flb.options -> Taskgraph.t -> Machine.t -> Schedule.t * report
(** Runs FLB and rates each iteration's {e realized} start time against
    the exhaustive (ready task × processor) scan. On a uniform machine
    the report shows zero suboptimal steps. *)
