open! Flb_taskgraph
open! Flb_platform

type violation = {
  iteration : int;
  chosen : Flb.candidate;
  best : Flb.candidate;
}

let pp_violation ppf v =
  Format.fprintf ppf
    "iteration %d: chose t%d on p%d starting %g, but t%d on p%d starts %g"
    v.iteration v.chosen.Flb.task v.chosen.Flb.proc v.chosen.Flb.est
    v.best.Flb.task v.best.Flb.proc v.best.Flb.est

(* Brute force over the full ready set: the O(W P) scan ETF performs. *)
let best_pair sched =
  List.fold_left
    (fun best t ->
      let proc, est = Schedule.min_est_over_procs sched t in
      match best with
      | Some b when b.Flb.est <= est -> best
      | _ -> Some { Flb.task = t; proc; est })
    None (Schedule.ready_tasks sched)

type report = {
  iterations : int;
  suboptimal_steps : int;
  mean_ratio : float;
  max_ratio : float;
}

let measure ?options graph machine =
  let suboptimal = ref 0 in
  let ratio_sum = ref 0.0 in
  let rated = ref 0 in
  let max_ratio = ref 1.0 in
  let observer sched (it : Flb.iteration) =
    match best_pair sched with
    | None -> assert false
    | Some best ->
      (* the start FLB will realize (recomputed on non-uniform machines) *)
      let realized =
        if Machine.is_uniform machine then it.chosen.Flb.est
        else Schedule.est sched it.chosen.Flb.task ~proc:it.chosen.Flb.proc
      in
      if realized > best.Flb.est +. 1e-12 then incr suboptimal;
      if best.Flb.est > 0.0 then begin
        incr rated;
        let r = realized /. best.Flb.est in
        ratio_sum := !ratio_sum +. r;
        if r > !max_ratio then max_ratio := r
      end
  in
  let sched = Flb.run ?options ~observer graph machine in
  ( sched,
    {
      iterations = Taskgraph.num_tasks graph;
      suboptimal_steps = !suboptimal;
      mean_ratio = (if !rated = 0 then 1.0 else !ratio_sum /. float_of_int !rated);
      max_ratio = !max_ratio;
    } )

let run_checked ?options graph machine =
  let violations = ref [] in
  let observer sched (it : Flb.iteration) =
    match best_pair sched with
    | None -> assert false (* an iteration implies a non-empty ready set *)
    | Some best ->
      if best.Flb.est < it.chosen.Flb.est then
        violations := { iteration = it.index; chosen = it.chosen; best } :: !violations
  in
  let sched = Flb.run ?options ~observer graph machine in
  match List.rev !violations with [] -> Ok sched | vs -> Error vs
