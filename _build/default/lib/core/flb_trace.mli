open! Flb_taskgraph
open! Flb_platform

(** Execution tracing for FLB — the machinery behind the paper's
    Table 1, which walks the Fig. 1 graph through every scheduling
    iteration showing the queue contents and the chosen assignment. *)

type row = {
  iteration : int;
  ep_lists : (int * Flb.ep_entry list) list;
      (** EP-type tasks per enabling processor, queue order *)
  non_ep : (Taskgraph.task * float) list;  (** task, LMT; queue order *)
  task : Taskgraph.task;  (** scheduled this iteration *)
  proc : int;
  start : float;
  finish : float;
}

val collect :
  ?options:Flb.options -> Taskgraph.t -> Machine.t -> Schedule.t * row list
(** Runs FLB with a tracing observer; returns the finished schedule and
    one row per iteration (state {e before} that iteration's
    assignment, plus the assignment itself). *)

val render : num_procs:int -> row list -> string
(** Formats rows like the paper's Table 1: one column of EP tasks per
    processor ([t3[2;12/3]] is task 3 with EMT 2, bottom level 12, LMT
    3), one column of non-EP tasks ([t1[3]] is task 1 with LMT 3), and
    the scheduling action ([t3 -> p0 [2-5]]). *)

val render_fig1 : unit -> string
(** The paper's Table 1 verbatim: trace of {!Example.fig1} on two
    processors. *)
