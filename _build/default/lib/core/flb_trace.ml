open! Flb_taskgraph
open! Flb_platform

type row = {
  iteration : int;
  ep_lists : (int * Flb.ep_entry list) list;
  non_ep : (Taskgraph.task * float) list;
  task : Taskgraph.task;
  proc : int;
  start : float;
  finish : float;
}

let collect ?options graph machine =
  let rows = ref [] in
  let observer _sched (it : Flb.iteration) =
    let { Flb.task; proc; est } = it.chosen in
    rows :=
      {
        iteration = it.index;
        ep_lists = it.ep_lists;
        non_ep = it.non_ep_list;
        task;
        proc;
        start = est;
        finish = est +. Taskgraph.comp graph task;
      }
      :: !rows
  in
  let sched = Flb.run ?options ~observer graph machine in
  (sched, List.rev !rows)

let number g =
  (* Render costs that happen to be integral without a decimal point, the
     way the paper prints them. *)
  if Float.is_integer g && Float.abs g < 1e15 then
    string_of_int (int_of_float g)
  else Printf.sprintf "%g" g

let ep_entry_to_string (e : Flb.ep_entry) =
  Printf.sprintf "t%d[%s;%s/%s]" e.task (number e.emt) (number e.blevel)
    (number e.lmt)

let non_ep_to_string (t, lmt) = Printf.sprintf "t%d[%s]" t (number lmt)

let render ~num_procs rows =
  let headers =
    List.init num_procs (fun p -> Printf.sprintf "EP on p%d" p)
    @ [ "non-EP"; "scheduling" ]
  in
  let row_cells r =
    List.init num_procs (fun p ->
        match List.assoc_opt p r.ep_lists with
        | None -> "-"
        | Some entries -> String.concat " " (List.map ep_entry_to_string entries))
    @ [
        (match r.non_ep with
        | [] -> "-"
        | l -> String.concat " " (List.map non_ep_to_string l));
        Printf.sprintf "t%d -> p%d [%s-%s]" r.task r.proc (number r.start)
          (number r.finish);
      ]
  in
  let table = headers :: List.map row_cells rows in
  let cols = List.length headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 table
  in
  let widths = List.init cols width in
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun c cell ->
        Buffer.add_string buf cell;
        if c < cols - 1 then
          Buffer.add_string buf (String.make (List.nth widths c - String.length cell + 2) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit headers;
  emit (List.map (fun w -> String.make w '-') widths);
  List.iter (fun r -> emit (row_cells r)) rows;
  Buffer.contents buf

let render_fig1 () =
  let graph = Example.fig1 () in
  let machine = Machine.clique ~num_procs:2 in
  let _, rows = collect graph machine in
  render ~num_procs:2 rows
