let contract g ~group_of =
  let n = Taskgraph.num_tasks g in
  (* Relabel group ids densely in order of first appearance along the
     task ids, so results are deterministic. *)
  let dense = Hashtbl.create 16 in
  let macro_of = Array.make n (-1) in
  let count = ref 0 in
  for t = 0 to n - 1 do
    let gid = group_of t in
    let m =
      match Hashtbl.find_opt dense gid with
      | Some m -> m
      | None ->
        let m = !count in
        Hashtbl.add dense gid m;
        incr count;
        m
    in
    macro_of.(t) <- m
  done;
  let comp = Array.make !count 0.0 in
  for t = 0 to n - 1 do
    comp.(macro_of.(t)) <- comp.(macro_of.(t)) +. Taskgraph.comp g t
  done;
  (* Sum parallel edges between macro pairs. *)
  let edge_weight = Hashtbl.create 64 in
  Taskgraph.iter_edges
    (fun src dst w ->
      let ms = macro_of.(src) and md = macro_of.(dst) in
      if ms <> md then begin
        let key = (ms, md) in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt edge_weight key) in
        Hashtbl.replace edge_weight key (prev +. w)
      end)
    g;
  let edges =
    Hashtbl.fold (fun (s, d) w acc -> (s, d, w) :: acc) edge_weight []
    |> List.sort compare
  in
  match Taskgraph.of_arrays ~comp ~edges:(Array.of_list edges) with
  | coarse -> (coarse, macro_of)
  | exception Invalid_argument _ ->
    invalid_arg "Coarsen.contract: grouping induces a cycle"

let merge_chains ?(max_grain = infinity) g =
  let n = Taskgraph.num_tasks g in
  (* Union-find over tasks; chains are merged root-ward. *)
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); parent.(x)) in
  let grain = Array.init n (Taskgraph.comp g) in
  (* Walk in topological order so each chain accumulates front to back. *)
  Array.iter
    (fun u ->
      if Taskgraph.out_degree g u = 1 then begin
        let v, _ = (Taskgraph.succs g u).(0) in
        if Taskgraph.in_degree g v = 1 then begin
          let ru = find u and rv = find v in
          if ru <> rv && grain.(ru) +. grain.(rv) <= max_grain then begin
            parent.(rv) <- ru;
            grain.(ru) <- grain.(ru) +. grain.(rv)
          end
        end
      end)
    (Topo.order g);
  contract g ~group_of:find
