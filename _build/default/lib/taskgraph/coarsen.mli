(** Grain packing: contracting fine-grain graphs into coarser ones.

    The paper's reference [4] (Kruatrachue & Lewis, "Grain size
    determination for parallel processing") motivates raising task
    granularity before scheduling: merging chains of tasks removes
    internal messages and lowers the effective CCR at the cost of
    potential parallelism. This module implements the safe core of that
    idea — contraction of {e linear chains} — plus a general contraction
    operator for caller-chosen groupings. *)

val contract :
  Taskgraph.t -> group_of:(Taskgraph.task -> int) -> Taskgraph.t * int array
(** [contract g ~group_of] merges all tasks with equal group ids into
    macro-tasks: computation costs add; parallel edges between two
    macro-tasks combine by {e summing} their communication costs
    (all the data still has to move); intra-group edges disappear.
    Returns the contracted graph and the dense relabeling
    [group id -> macro task id is implicit; the array maps original
    task -> macro task].
    @raise Invalid_argument if the grouping induces a cycle. *)

val merge_chains : ?max_grain:float -> Taskgraph.t -> Taskgraph.t * int array
(** Contracts every maximal linear chain — consecutive tasks [u -> v]
    with [out_degree u = 1] and [in_degree v = 1] — provided the merged
    computation cost stays at most [max_grain] (default: unbounded).
    Chain contraction can never create a cycle. Returns the coarse
    graph and the original-task -> macro-task map. *)
