exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# task graph: %d tasks, %d edges\n" (Taskgraph.num_tasks g)
       (Taskgraph.num_edges g));
  Buffer.add_string buf (Printf.sprintf "tasks %d\n" (Taskgraph.num_tasks g));
  for t = 0 to Taskgraph.num_tasks g - 1 do
    Buffer.add_string buf (Printf.sprintf "task %d %.17g\n" t (Taskgraph.comp g t))
  done;
  Taskgraph.iter_edges
    (fun src dst w ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" src dst w))
    g;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let num_tasks = ref (-1) in
  let comps = ref [||] in
  let comp_seen = ref [||] in
  let edges = ref [] in
  let last_line = ref 0 in
  let parse_float line s what =
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> f
    | _ -> fail line "bad %s %S" what s
  in
  let parse_int line s what =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail line "bad %s %S" what s
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      last_line := line;
      let content =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let fields =
        String.split_on_char ' ' content
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "" && s <> "\r")
      in
      match fields with
      | [] -> ()
      | [ "tasks"; n ] ->
        if !num_tasks >= 0 then fail line "duplicate 'tasks' line";
        let n = parse_int line n "task count" in
        if n < 0 then fail line "negative task count";
        num_tasks := n;
        comps := Array.make (max n 1) 0.0;
        comp_seen := Array.make (max n 1) false
      | "task" :: rest -> begin
        if !num_tasks < 0 then fail line "'task' before 'tasks'";
        match rest with
        | [ id; c ] ->
          let id = parse_int line id "task id" in
          if id < 0 || id >= !num_tasks then fail line "task id %d out of range" id;
          if !comp_seen.(id) then fail line "duplicate task %d" id;
          !comp_seen.(id) <- true;
          !comps.(id) <- parse_float line c "computation cost"
        | _ -> fail line "expected: task <id> <comp>"
      end
      | "edge" :: rest -> begin
        if !num_tasks < 0 then fail line "'edge' before 'tasks'";
        match rest with
        | [ src; dst; w ] ->
          let src = parse_int line src "source" in
          let dst = parse_int line dst "destination" in
          edges := (src, dst, parse_float line w "communication cost") :: !edges
        | _ -> fail line "expected: edge <src> <dst> <comm>"
      end
      | keyword :: _ -> fail line "unknown directive %S" keyword)
    lines;
  if !num_tasks < 0 then fail !last_line "missing 'tasks' line";
  for id = 0 to !num_tasks - 1 do
    if not !comp_seen.(id) then fail !last_line "missing 'task %d' line" id
  done;
  match
    Taskgraph.of_arrays
      ~comp:(Array.sub !comps 0 !num_tasks)
      ~edges:(Array.of_list (List.rev !edges))
  with
  | g -> g
  | exception Invalid_argument msg -> fail !last_line "%s" msg

let save g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
