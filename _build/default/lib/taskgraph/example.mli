(** The example task graph of the paper (Fig. 1).

    Eight tasks [t0 .. t7]; the execution trace in Table 1 of the paper
    schedules it on two processors. The bitmap figure's edge weights are
    partly illegible in the available text, so the graph was
    reconstructed by inverting every EMT/LMT/bottom-level value printed
    in the trace; the reconstruction is certified by the golden trace
    test, which reproduces Table 1 row for row. *)

val fig1 : unit -> Taskgraph.t
(** Fresh copy of the Fig. 1 graph. *)

val fig1_blevels : float array
(** Expected bottom levels (computation + communication) of [t0 .. t7]:
    used by the trace tests. *)

val fig1_schedule_length : float
(** Schedule length of the Table 1 FLB schedule on two processors (14). *)
