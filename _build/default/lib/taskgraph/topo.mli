(** Topological orderings and depth structure of task graphs. *)

val order : Taskgraph.t -> Taskgraph.task array
(** A topological order of all tasks. Deterministic: among the tasks
    whose predecessors are all placed, the smallest identifier comes
    first. *)

val is_topological : Taskgraph.t -> Taskgraph.task array -> bool
(** [is_topological g a] checks that [a] is a permutation of the tasks in
    which every edge goes forward. *)

val depth : Taskgraph.t -> int array
(** [depth g].(t) is the length (in edges) of the longest path from any
    entry task to [t]; entry tasks have depth 0. *)

val num_levels : Taskgraph.t -> int
(** [1 + max depth]; 0 for the empty graph. *)

val level_members : Taskgraph.t -> Taskgraph.task list array
(** Tasks grouped by {!depth}, each level sorted by identifier. Tasks on
    one level are pairwise unconnected, so each level is an antichain. *)

val reachable : Taskgraph.t -> Flb_prelude.Bitset.t array
(** [reachable g].(t) is the set of tasks strictly reachable from [t]
    (transitive closure, excluding [t] itself). O(V * E / word) time and
    O(V^2 / word) space; intended for analysis of small graphs. *)

val connected : Flb_prelude.Bitset.t array -> Taskgraph.task -> Taskgraph.task -> bool
(** [connected closure a b] holds iff a directed path connects [a] and
    [b] in either direction, given [closure = reachable g]. *)
