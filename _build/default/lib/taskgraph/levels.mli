(** Static path-length attributes: bottom levels, top levels, ALAP times.

    All quantities assume every edge pays its full communication cost
    (the usual static convention: priorities are computed before any
    placement is known).

    - the {e bottom level} of [t] is the longest path length from [t] to
      any exit task, including [comp t] and all edge costs on the path;
    - the {e top level} of [t] is the longest path length from any entry
      task to the start of [t], excluding [comp t];
    - the {e critical path} length is [max_t (tlevel t + blevel t)];
    - the {e ALAP} (latest possible start) time of [t] is
      [cp_length - blevel t], the priority used by MCP. *)

val blevel : Taskgraph.t -> float array
(** Bottom levels with communication costs. *)

val blevel_comp_only : Taskgraph.t -> float array
(** Bottom levels counting computation only (the classic "static level"
    used by HLFET-style heuristics). *)

val tlevel : Taskgraph.t -> float array
(** Top levels with communication costs. *)

val cp_length : Taskgraph.t -> float
(** Critical-path length (= schedule length on one task per processor
    with free communication everywhere, i.e. the unlimited-processor
    lower bound). 0 for the empty graph. *)

val alap : Taskgraph.t -> float array
(** ALAP start times: [cp_length g -. blevel g.(t)]. *)

val critical_path : Taskgraph.t -> Taskgraph.task list
(** One maximal-length path, entry to exit, realizing {!cp_length}.
    Deterministic (smallest task id wins ties). Empty for the empty
    graph. *)
