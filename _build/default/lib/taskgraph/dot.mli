(** Graphviz export of task graphs and (optionally) schedules. *)

val to_string : ?name:string -> Taskgraph.t -> string
(** DOT digraph with computation costs as node labels and communication
    costs as edge labels. *)

val to_string_with_placement :
  ?name:string -> Taskgraph.t -> proc_of:(Taskgraph.task -> int) -> string
(** Same, with tasks colored by assigned processor (useful for
    eyeballing schedules; colors cycle after 10 processors). *)

val save : ?name:string -> Taskgraph.t -> path:string -> unit
