(* Reconstruction of the paper's Fig. 1 from the Table 1 trace:

   - LMT(t1)=3, LMT(t3)=3 with FT(t0)=2 give comm(t0,t1)=comm(t0,t3)=1;
     LMT(t2)=6 gives comm(t0,t2)=4.
   - t4 becomes ready right after t1 finishes, so pred(t4)={t1};
     LMT(t4)=7 with FT(t1)=5 gives comm(t1,t4)=2.
   - t5 appears with LMT=6 and EMT=6 on p0 after t3 (p0, FT 5) and t1
     (p1, FT 5) both finish: preds {t3, t1} with comm 1 each.
   - t6 appears right after t2 (FT 7) with LMT=8: pred {t2}, comm 1.
   - t7: EMT on p0 = 12 with FT(t5)=10 (local), FT(t6)=10, FT(t4)=8
     gives comm(t5,t7)=3, comm(t6,t7)=2, comm(t4,t7)=1.
   - All bottom levels then match the trace column exactly
     (BL = 15, 11, 9, 12, 6, 8, 6, 2). *)

let comp = [| 2.0; 2.0; 2.0; 3.0; 3.0; 3.0; 2.0; 2.0 |]

let edges =
  [|
    (0, 1, 1.0);
    (0, 2, 4.0);
    (0, 3, 1.0);
    (1, 4, 2.0);
    (1, 5, 1.0);
    (3, 5, 1.0);
    (2, 6, 1.0);
    (4, 7, 1.0);
    (5, 7, 3.0);
    (6, 7, 2.0);
  |]

let fig1 () = Taskgraph.of_arrays ~comp ~edges

let fig1_blevels = [| 15.0; 11.0; 9.0; 12.0; 6.0; 8.0; 6.0; 2.0 |]

let fig1_schedule_length = 14.0
