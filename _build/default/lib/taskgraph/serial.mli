(** Plain-text task-graph format.

    Line-oriented, whitespace-separated, ['#'] comments:

    {v
    # optional comments and blank lines anywhere
    tasks <n>
    task <id> <comp>
    edge <src> <dst> <comm>
    v}

    [tasks] must come first and fixes the id range; every [task] line
    sets the computation cost of one id in [0 .. n-1] (each exactly
    once); [edge] lines may appear in any order after [tasks]. *)

exception Parse_error of { line : int; message : string }

val to_string : Taskgraph.t -> string

val of_string : string -> Taskgraph.t
(** @raise Parse_error on malformed input (including cycles, reported on
    the last line). *)

val save : Taskgraph.t -> path:string -> unit

val load : path:string -> Taskgraph.t
(** @raise Parse_error and [Sys_error] as applicable. *)
