(** Time-resolved parallelism profiles.

    The profile of a graph is the number of concurrently running tasks
    over time in the idealized execution (unbounded processors, free
    communication, every task starting as early as possible). It
    characterizes how much machine a workload can use at each phase —
    the standard way to explain why LU's speedup flattens while a
    stencil's does not (paper §6.2). *)

type segment = { from_time : float; until_time : float; running : int }

val compute : Taskgraph.t -> segment list
(** Piecewise-constant profile, segments in time order, adjacent
    segments having distinct [running] counts. Empty for the empty
    graph; zero-duration tasks contribute no width. *)

val average_parallelism : Taskgraph.t -> float
(** Work divided by idealized span — the mean height of the profile.
    @raise Invalid_argument on an empty graph or zero-length span. *)

val peak_parallelism : Taskgraph.t -> int
(** Max height of the profile (equals {!Width.max_ready_bound}). *)

val render : ?width:int -> ?height:int -> Taskgraph.t -> string
(** ASCII art of the profile, [width] columns by [height] rows. *)
