(** Task-graph width: the maximum number of pairwise-unconnected tasks.

    The paper's complexity bound O(V (log W + log P) + E) is stated in
    terms of the width W, which also bounds the number of simultaneously
    ready tasks. Exact width is a maximum-antichain computation; by
    Dilworth's theorem it equals the minimum number of chains covering
    the DAG, which reduces to maximum bipartite matching on the
    transitive closure (Fulkerson's construction). That is O(V * E')
    with E' the closure size, fine for validation-scale graphs; the
    experiment harness uses the cheap bounds instead. *)

val exact : Taskgraph.t -> int
(** Maximum antichain size via Dilworth/König. Intended for graphs up to
    a few thousand tasks. 0 for the empty graph. *)

val max_level_width : Taskgraph.t -> int
(** Size of the most populated depth level. Every level is an antichain,
    so this lower-bounds {!exact}; for the regular layered graphs used
    in the evaluation it is usually exact. *)

val max_ready_bound : Taskgraph.t -> int
(** Peak size of the ready set over a greedy execution in topological
    order with unbounded processors (every ready task starts as soon as
    enabled, unit-time sweep). This is the quantity that actually bounds
    FLB's queue sizes at run time; it never exceeds {!exact}. Zero-cost
    tasks occupy empty intervals and are not counted, so the bound can
    be 0 on graphs of only zero-cost tasks. *)
