module Vec = Flb_prelude.Vec

type task = int

type t = {
  comp : float array;
  succ : (task * float) array array;
  pred : (task * float) array array;
  num_edges : int;
}

let num_tasks g = Array.length g.comp

let num_edges g = g.num_edges

let check_task g t op =
  if t < 0 || t >= num_tasks g then
    invalid_arg (Printf.sprintf "Taskgraph.%s: unknown task %d" op t)

let comp g t =
  check_task g t "comp";
  g.comp.(t)

let succs g t =
  check_task g t "succs";
  g.succ.(t)

let preds g t =
  check_task g t "preds";
  g.pred.(t)

let out_degree g t = Array.length (succs g t)

let in_degree g t = Array.length (preds g t)

let is_entry g t = in_degree g t = 0

let is_exit g t = out_degree g t = 0

let entry_tasks g =
  List.filter (is_entry g) (List.init (num_tasks g) Fun.id)

let exit_tasks g =
  List.filter (is_exit g) (List.init (num_tasks g) Fun.id)

let iter_edges f g =
  Array.iteri
    (fun src out -> Array.iter (fun (dst, w) -> f src dst w) out)
    g.succ

let comm g ~src ~dst =
  check_task g src "comm";
  check_task g dst "comm";
  Array.find_map (fun (t, w) -> if t = dst then Some w else None) g.succ.(src)

let total_comp g = Array.fold_left ( +. ) 0.0 g.comp

let total_comm g =
  let acc = ref 0.0 in
  iter_edges (fun _ _ w -> acc := !acc +. w) g;
  !acc

let ccr g =
  if num_tasks g = 0 then invalid_arg "Taskgraph.ccr: empty graph";
  if num_edges g = 0 then 0.0
  else begin
    let avg_comm = total_comm g /. float_of_int (num_edges g) in
    let avg_comp = total_comp g /. float_of_int (num_tasks g) in
    avg_comm /. avg_comp
  end

module Builder = struct
  type builder = {
    comps : float Vec.t;
    (* Adjacency accumulated as vectors, frozen to arrays in [build]. *)
    out : (task * float) Vec.t Vec.t;
    into : (task * float) Vec.t Vec.t;
    mutable edges : int;
    mutable built : bool;
  }

  type t = builder

  let create ?(expected_tasks = 16) () =
    {
      comps = Vec.create ~capacity:expected_tasks ();
      out = Vec.create ~capacity:expected_tasks ();
      into = Vec.create ~capacity:expected_tasks ();
      edges = 0;
      built = false;
    }

  let check_alive b op =
    if b.built then invalid_arg ("Taskgraph.Builder." ^ op ^ ": builder already built")

  let check_weight w what op =
    if not (Float.is_finite w) || w < 0.0 then
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.%s: %s must be finite and non-negative"
           op what)

  let add_task b ~comp =
    check_alive b "add_task";
    check_weight comp "computation cost" "add_task";
    let id = Vec.length b.comps in
    Vec.push b.comps comp;
    Vec.push b.out (Vec.create ~capacity:2 ());
    Vec.push b.into (Vec.create ~capacity:2 ());
    id

  let num_tasks b = Vec.length b.comps

  let add_edge b ~src ~dst ~comm =
    check_alive b "add_edge";
    check_weight comm "communication cost" "add_edge";
    let n = num_tasks b in
    if src < 0 || src >= n then
      invalid_arg (Printf.sprintf "Taskgraph.Builder.add_edge: unknown source %d" src);
    if dst < 0 || dst >= n then
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.add_edge: unknown destination %d" dst);
    if src = dst then
      invalid_arg (Printf.sprintf "Taskgraph.Builder.add_edge: self edge on %d" src);
    if Vec.exists (fun (t, _) -> t = dst) (Vec.get b.out src) then
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.add_edge: duplicate edge %d -> %d" src dst);
    Vec.push (Vec.get b.out src) (dst, comm);
    Vec.push (Vec.get b.into dst) (src, comm);
    b.edges <- b.edges + 1

  (* Kahn's algorithm; on failure some task keeps a positive in-degree and
     necessarily lies on (or downstream of) a cycle. *)
  let check_acyclic comp succ pred =
    let n = Array.length comp in
    let indeg = Array.map Array.length pred in
    let queue = Queue.create () in
    Array.iteri (fun t d -> if d = 0 then Queue.add t queue) indeg;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let t = Queue.pop queue in
      incr visited;
      Array.iter
        (fun (s, _) ->
          indeg.(s) <- indeg.(s) - 1;
          if indeg.(s) = 0 then Queue.add s queue)
        succ.(t)
    done;
    if !visited <> n then begin
      let on_cycle = ref (-1) in
      Array.iteri (fun t d -> if d > 0 && !on_cycle < 0 then on_cycle := t) indeg;
      invalid_arg
        (Printf.sprintf "Taskgraph.Builder.build: graph has a cycle through task %d"
           !on_cycle)
    end

  let build b =
    check_alive b "build";
    b.built <- true;
    let comp = Vec.to_array b.comps in
    let succ = Vec.to_array (Vec.map Vec.to_array b.out) in
    let pred = Vec.to_array (Vec.map Vec.to_array b.into) in
    check_acyclic comp succ pred;
    { comp; succ; pred; num_edges = b.edges }
end

let of_arrays ~comp ~edges =
  let b = Builder.create ~expected_tasks:(Array.length comp) () in
  Array.iter (fun c -> ignore (Builder.add_task b ~comp:c)) comp;
  Array.iter (fun (src, dst, comm) -> Builder.add_edge b ~src ~dst ~comm) edges;
  Builder.build b

let pp ppf g =
  Format.fprintf ppf "task graph: %d tasks, %d edges, CCR %.3f" (num_tasks g)
    (num_edges g)
    (if num_tasks g = 0 then 0.0 else ccr g)

let pp_full ppf g =
  pp ppf g;
  for t = 0 to num_tasks g - 1 do
    Format.fprintf ppf "@\n  t%d comp=%g" t g.comp.(t);
    Array.iter (fun (d, w) -> Format.fprintf ppf " ->t%d(%g)" d w) g.succ.(t)
  done
