lib/taskgraph/taskgraph.ml: Array Flb_prelude Float Format Fun List Printf Queue
