lib/taskgraph/width.mli: Taskgraph
