lib/taskgraph/coarsen.mli: Taskgraph
