lib/taskgraph/width.ml: Array Flb_prelude List Taskgraph Topo
