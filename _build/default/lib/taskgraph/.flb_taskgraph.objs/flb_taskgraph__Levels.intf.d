lib/taskgraph/levels.mli: Taskgraph
