lib/taskgraph/serial.ml: Array Buffer Float Fun In_channel List Printf String Taskgraph
