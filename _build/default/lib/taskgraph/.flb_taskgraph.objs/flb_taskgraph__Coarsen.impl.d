lib/taskgraph/coarsen.ml: Array Fun Hashtbl List Option Taskgraph Topo
