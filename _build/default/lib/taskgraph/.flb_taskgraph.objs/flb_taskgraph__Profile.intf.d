lib/taskgraph/profile.mli: Taskgraph
