lib/taskgraph/levels.ml: Array List Taskgraph Topo
