lib/taskgraph/example.mli: Taskgraph
