lib/taskgraph/topo.mli: Flb_prelude Taskgraph
