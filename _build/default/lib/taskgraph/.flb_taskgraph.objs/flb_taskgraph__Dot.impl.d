lib/taskgraph/dot.ml: Array Buffer Fun Printf Taskgraph
