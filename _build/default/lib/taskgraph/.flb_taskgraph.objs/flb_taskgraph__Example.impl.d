lib/taskgraph/example.ml: Taskgraph
