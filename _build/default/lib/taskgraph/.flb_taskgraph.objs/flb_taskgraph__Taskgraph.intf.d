lib/taskgraph/taskgraph.mli: Format
