lib/taskgraph/transform.ml: Array Flb_prelude Float Format Levels List Taskgraph Topo Width
