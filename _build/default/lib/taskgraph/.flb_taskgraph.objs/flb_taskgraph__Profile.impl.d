lib/taskgraph/profile.ml: Array Buffer Float List Printf String Taskgraph Topo
