lib/taskgraph/serial.mli: Taskgraph
