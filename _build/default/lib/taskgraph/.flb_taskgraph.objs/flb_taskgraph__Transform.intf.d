lib/taskgraph/transform.mli: Format Taskgraph
