lib/taskgraph/dot.mli: Taskgraph
