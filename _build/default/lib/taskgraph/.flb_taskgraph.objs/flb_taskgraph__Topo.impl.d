lib/taskgraph/topo.ml: Array Flb_prelude Int Set Taskgraph
