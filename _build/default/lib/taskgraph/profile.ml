type segment = { from_time : float; until_time : float; running : int }

(* ASAP execution on unbounded processors with free communication: the
   same interval structure used by Width.max_ready_bound. *)
let intervals g =
  let n = Taskgraph.num_tasks g in
  let enable = Array.make n 0.0 in
  let finish = Array.make n 0.0 in
  Array.iter
    (fun t ->
      finish.(t) <- enable.(t) +. Taskgraph.comp g t;
      Array.iter
        (fun (s, _) -> if finish.(t) > enable.(s) then enable.(s) <- finish.(t))
        (Taskgraph.succs g t))
    (Topo.order g);
  (enable, finish)

let compute g =
  let n = Taskgraph.num_tasks g in
  if n = 0 then []
  else begin
    let enable, finish = intervals g in
    (* endpoint sweep; finishes before starts at equal times *)
    let events =
      Array.concat
        [
          Array.init n (fun t -> (finish.(t), 0));
          Array.init n (fun t -> (enable.(t), 1));
        ]
    in
    Array.sort compare events;
    let segments = ref [] in
    let running = ref 0 in
    let cursor = ref 0.0 in
    Array.iter
      (fun (time, kind) ->
        if time > !cursor then begin
          (match !segments with
          | { running = r; _ } :: _ when r = !running ->
            (* merge with the previous segment *)
            segments :=
              (match !segments with
              | s :: rest -> { s with until_time = time } :: rest
              | [] -> assert false)
          | _ ->
            segments :=
              { from_time = !cursor; until_time = time; running = !running }
              :: !segments);
          cursor := time
        end;
        if kind = 1 then incr running else decr running)
      events;
    List.rev !segments
  end

let span g =
  List.fold_left (fun acc s -> Float.max acc s.until_time) 0.0 (compute g)

let average_parallelism g =
  if Taskgraph.num_tasks g = 0 then invalid_arg "Profile.average_parallelism: empty graph";
  let total = Taskgraph.total_comp g in
  let sp = span g in
  if sp <= 0.0 then invalid_arg "Profile.average_parallelism: zero span";
  total /. sp

let peak_parallelism g =
  List.fold_left (fun acc s -> max acc s.running) 0 (compute g)

let render ?(width = 60) ?(height = 10) g =
  let segments = compute g in
  match segments with
  | [] -> "(empty graph)\n"
  | _ ->
    let sp = List.fold_left (fun acc s -> Float.max acc s.until_time) 0.0 segments in
    let peak = List.fold_left (fun acc s -> max acc s.running) 0 segments in
    if sp <= 0.0 || peak = 0 then "(zero-length profile)\n"
    else begin
      (* height of each column = running count at the column's mid-time *)
      let column_height c =
        let time = (float_of_int c +. 0.5) /. float_of_int width *. sp in
        match
          List.find_opt (fun s -> s.from_time <= time && time < s.until_time) segments
        with
        | Some s -> s.running
        | None -> 0
      in
      let buf = Buffer.create ((width + 16) * height) in
      for row = height downto 1 do
        let threshold = float_of_int row /. float_of_int height *. float_of_int peak in
        Buffer.add_string buf
          (Printf.sprintf "%5.0f |" (Float.round threshold));
        for c = 0 to width - 1 do
          Buffer.add_char buf
            (if float_of_int (column_height c) >= threshold then '#' else ' ')
        done;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf
        (Printf.sprintf "      +%s\n       0%*s%.6g\n" (String.make width '-')
           (width - 8) "" sp);
      Buffer.contents buf
    end
