module Bitset = Flb_prelude.Bitset

let max_level_width g =
  Array.fold_left
    (fun acc level -> max acc (List.length level))
    0 (Topo.level_members g)

(* Dilworth: max antichain = min chain partition = V - max matching on the
   bipartite "comparability" graph of the transitive closure. Matching by
   Kuhn's augmenting-path algorithm over bitset adjacency. *)
let exact g =
  let n = Taskgraph.num_tasks g in
  if n = 0 then 0
  else begin
    let closure = Topo.reachable g in
    let match_right = Array.make n (-1) in
    let match_left = Array.make n (-1) in
    let visited = Array.make n (-1) in
    (* [try_augment stamp u] searches for an augmenting path from left
       vertex [u]; [visited] is stamped per phase to avoid clearing. *)
    let rec try_augment stamp u =
      let found = ref false in
      Bitset.iter
        (fun v ->
          if (not !found) && visited.(v) <> stamp then begin
            visited.(v) <- stamp;
            if match_right.(v) = -1 || try_augment stamp match_right.(v) then begin
              match_right.(v) <- u;
              match_left.(u) <- v;
              found := true
            end
          end)
        closure.(u);
      !found
    in
    let matching = ref 0 in
    for u = 0 to n - 1 do
      if try_augment u u then incr matching
    done;
    n - !matching
  end

let max_ready_bound g =
  let n = Taskgraph.num_tasks g in
  if n = 0 then 0
  else begin
    (* Unbounded processors, zero communication: task [t] is enabled at the
       max finish time of its predecessors and runs immediately. Tasks whose
       [enable, finish) intervals overlap are pairwise unconnected, so the
       peak overlap is a valid antichain size. Zero-cost tasks get a point
       interval which still counts at its instant. *)
    let enable = Array.make n 0.0 in
    let finish = Array.make n 0.0 in
    Array.iter
      (fun t ->
        finish.(t) <- enable.(t) +. Taskgraph.comp g t;
        Array.iter
          (fun (s, _) -> if finish.(t) > enable.(s) then enable.(s) <- finish.(t))
          (Taskgraph.succs g t))
      (Topo.order g);
    (* Sweep over half-open intervals: at equal times, finishes (kind 0)
       are processed before enables (kind 1) so back-to-back tasks do not
       overlap. Zero-cost tasks degenerate to empty intervals and are not
       counted. *)
    let events =
      Array.concat
        [
          Array.init n (fun t -> (finish.(t), 0));
          Array.init n (fun t -> (enable.(t), 1));
        ]
    in
    Array.sort compare events;
    let current = ref 0 and peak = ref 0 in
    Array.iter
      (fun (_, kind) ->
        if kind = 1 then begin
          incr current;
          if !current > !peak then peak := !current
        end
        else decr current)
      events;
    !peak
  end
