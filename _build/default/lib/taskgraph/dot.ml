let palette =
  [|
    "#a6cee3"; "#1f78b4"; "#b2df8a"; "#33a02c"; "#fb9a99";
    "#e31a1c"; "#fdbf6f"; "#ff7f00"; "#cab2d6"; "#6a3d9a";
  |]

let render ?(name = "taskgraph") g ~node_attrs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=circle];\n";
  for t = 0 to Taskgraph.num_tasks g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  t%d [label=\"t%d\\n%g\"%s];\n" t t (Taskgraph.comp g t)
         (node_attrs t))
  done;
  Taskgraph.iter_edges
    (fun src dst w ->
      Buffer.add_string buf (Printf.sprintf "  t%d -> t%d [label=\"%g\"];\n" src dst w))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_string ?name g = render ?name g ~node_attrs:(fun _ -> "")

let to_string_with_placement ?name g ~proc_of =
  let node_attrs t =
    let p = proc_of t in
    if p < 0 then ""
    else
      Printf.sprintf ", style=filled, fillcolor=\"%s\""
        palette.(p mod Array.length palette)
  in
  render ?name g ~node_attrs

let save ?name g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name g))
