open! Flb_taskgraph

let computation_critical_path g =
  Array.fold_left Float.max 0.0 (Levels.blevel_comp_only g)

let work_bound g ~procs =
  if procs < 1 then invalid_arg "Lower_bounds.work_bound: no processors";
  Taskgraph.total_comp g /. float_of_int procs

(* Computation-only earliest start times (communication can always be
   zeroed, so these are valid for any placement). *)
let est_comp_only g =
  let n = Taskgraph.num_tasks g in
  let est = Array.make n 0.0 in
  Array.iter
    (fun t ->
      Array.iter
        (fun (s, _) ->
          let v = est.(t) +. Taskgraph.comp g t in
          if v > est.(s) then est.(s) <- v)
        (Taskgraph.succs g t))
    (Topo.order g);
  est

let fernandez_bound g ~procs =
  if procs < 1 then invalid_arg "Lower_bounds.fernandez_bound: no processors";
  let n = Taskgraph.num_tasks g in
  if n = 0 then 0.0
  else begin
    let p = float_of_int procs in
    let t0 = computation_critical_path g in
    let est = est_comp_only g in
    let blevel = Levels.blevel_comp_only g in
    (* latest completion time under makespan t0 *)
    let lct = Array.init n (fun t -> t0 -. blevel.(t) +. Taskgraph.comp g t) in
    (* Mandatory work of task [t] inside window [a, b]. *)
    let mandatory t a b =
      let c = Taskgraph.comp g t in
      let slack_before = Float.max 0.0 (a -. est.(t)) in
      let slack_after = Float.max 0.0 (lct.(t) -. b) in
      Float.max 0.0 (Float.min (Float.min c (b -. a)) (c -. slack_before -. slack_after))
    in
    (* Candidate window endpoints: the interval structure's breakpoints.
       All O(V^2) pairs are exact but cubic overall; past a size cutoff we
       sample a quadratic-in-samples subset — any subset still yields a
       valid (possibly weaker) lower bound. *)
    let endpoints =
      let all = Array.concat [ est; lct ] in
      Array.sort Float.compare all;
      let dedup = ref [] in
      Array.iter
        (fun x -> match !dedup with y :: _ when y = x -> () | _ -> dedup := x :: !dedup)
        all;
      let arr = Array.of_list (List.rev !dedup) in
      if Array.length arr <= 80 then arr
      else begin
        let k = 80 in
        Array.init k (fun i -> arr.(i * (Array.length arr - 1) / (k - 1)))
      end
    in
    let excess = ref 0.0 in
    Array.iter
      (fun a ->
        Array.iter
          (fun b ->
            if b > a then begin
              let q = ref 0.0 in
              for t = 0 to n - 1 do
                q := !q +. mandatory t a b
              done;
              let e = !q -. (p *. (b -. a)) in
              if e > !excess then excess := e
            end)
          endpoints)
        endpoints;
    t0 +. (!excess /. p)
  end

let best g ~procs =
  Float.max
    (computation_critical_path g)
    (Float.max (work_bound g ~procs) (fernandez_bound g ~procs))
