open! Flb_taskgraph

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let to_string s =
  let g = Schedule.graph s in
  let n = Taskgraph.num_tasks g in
  for t = 0 to n - 1 do
    if not (Schedule.is_scheduled s t) then
      invalid_arg "Schedule_io.to_string: incomplete schedule"
  done;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# makespan %.17g\nschedule %d %d\n" (Schedule.makespan s) n
       (Schedule.num_procs s));
  for t = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "assign %d %d %.17g\n" t (Schedule.proc s t)
         (Schedule.start_time s t))
  done;
  Buffer.contents buf

let of_string g machine text =
  let n = Taskgraph.num_tasks g in
  let p = Machine.num_procs machine in
  let proc = Array.make (max n 1) (-1) in
  let start = Array.make (max n 1) 0.0 in
  let header_seen = ref false in
  let last_line = ref 0 in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      last_line := line;
      let content =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let fields =
        String.split_on_char ' ' content
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "" && s <> "\r")
      in
      match fields with
      | [] -> ()
      | [ "schedule"; tasks; procs ] ->
        if !header_seen then fail line "duplicate 'schedule' header";
        header_seen := true;
        if int_of_string_opt tasks <> Some n then
          fail line "task count %s does not match the graph (%d)" tasks n;
        if int_of_string_opt procs <> Some p then
          fail line "processor count %s does not match the machine (%d)" procs p
      | [ "assign"; t; pr; st ] -> begin
        if not !header_seen then fail line "'assign' before 'schedule' header";
        match (int_of_string_opt t, int_of_string_opt pr, float_of_string_opt st) with
        | Some t, Some pr, Some st_val ->
          if t < 0 || t >= n then fail line "task %d out of range" t;
          if pr < 0 || pr >= p then fail line "processor %d out of range" pr;
          if proc.(t) >= 0 then fail line "duplicate assignment of task %d" t;
          if (not (Float.is_finite st_val)) || st_val < 0.0 then
            fail line "bad start time";
          proc.(t) <- pr;
          start.(t) <- st_val
        | _ -> fail line "expected: assign <task> <proc> <start>"
      end
      | keyword :: _ -> fail line "unknown directive %S" keyword)
    (String.split_on_char '\n' text);
  if not !header_seen then fail !last_line "missing 'schedule' header";
  for t = 0 to n - 1 do
    if proc.(t) < 0 then fail !last_line "task %d has no assignment" t
  done;
  (* Replay in topological order so Schedule.assign's readiness invariant
     holds regardless of the claimed start times. *)
  let s = Schedule.create g machine in
  Array.iter
    (fun t -> Schedule.assign s t ~proc:proc.(t) ~start:start.(t))
    (Topo.order g);
  s

let save s ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))

let load g machine ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string g machine (In_channel.input_all ic))
