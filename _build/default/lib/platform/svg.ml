open! Flb_taskgraph

let palette =
  [|
    "#8dd3c7"; "#ffffb3"; "#bebada"; "#fb8072"; "#80b1d3";
    "#fdb462"; "#b3de69"; "#fccde5"; "#d9d9d9"; "#bc80bd";
  |]

let of_schedule ?(width = 960) ?(lane_height = 36) ?(arrows = true) sched =
  let g = Schedule.graph sched in
  let n = Taskgraph.num_tasks g in
  for t = 0 to n - 1 do
    if not (Schedule.is_scheduled sched t) then
      invalid_arg "Svg.of_schedule: incomplete schedule"
  done;
  let procs = Schedule.num_procs sched in
  let makespan = Float.max (Schedule.makespan sched) 1e-9 in
  let margin_left = 70 and margin_top = 24 in
  let chart_width = float_of_int (width - margin_left - 16) in
  let x time = float_of_int margin_left +. (time /. makespan *. chart_width) in
  let y proc = margin_top + (proc * lane_height) in
  let height = margin_top + (procs * lane_height) + 30 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"sans-serif\" font-size=\"11\">\n"
       width height);
  (* lanes *)
  for p = 0 to procs - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\"/>\n"
         margin_left (y p) chart_width (lane_height - 4)
         (if p mod 2 = 0 then "#f4f4f4" else "#e9e9e9"));
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"6\" y=\"%d\">p%d</text>\n"
         (y p + (lane_height / 2)) p)
  done;
  (* task boxes *)
  for t = 0 to n - 1 do
    let p = Schedule.proc sched t in
    let x0 = x (Schedule.start_time sched t) in
    let x1 = x (Schedule.finish_time sched t) in
    let w = Float.max (x1 -. x0) 1.0 in
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" \
          stroke=\"#555\" stroke-width=\"0.5\"><title>t%d: [%g, %g] on p%d</title></rect>\n"
         x0 (y p + 2) w (lane_height - 8)
         palette.(t mod Array.length palette)
         t (Schedule.start_time sched t) (Schedule.finish_time sched t) p);
    if w > 18.0 then
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%.1f\" y=\"%d\">t%d</text>\n" (x0 +. 2.0)
           (y p + (lane_height / 2) + 2) t)
  done;
  (* message arrows *)
  if arrows then
    Taskgraph.iter_edges
      (fun src dst w ->
        let ps = Schedule.proc sched src and pd = Schedule.proc sched dst in
        if ps <> pd then
          Buffer.add_string buf
            (Printf.sprintf
               "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#c33\" \
                stroke-width=\"0.8\" opacity=\"0.6\"><title>t%d-&gt;t%d (%g)</title></line>\n"
               (x (Schedule.finish_time sched src))
               (y ps + (lane_height / 2))
               (x (Schedule.finish_time sched src +. w))
               (y pd + (lane_height / 2))
               src dst w))
      g;
  (* time axis *)
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\">0</text><text x=\"%.1f\" y=\"%d\">%g</text>\n"
       margin_left (height - 8)
       (x makespan -. 30.0)
       (height - 8) makespan);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?width ?lane_height ?arrows sched ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_schedule ?width ?lane_height ?arrows sched))
