open! Flb_taskgraph

(** Makespan lower bounds.

    Scheduling experiments report ratios against a {e reference
    algorithm} (the paper normalizes to MCP); these bounds give an
    algorithm-independent yardstick: no schedule on [p] processors of
    the clique machine can beat them, so
    [makespan / best_bound] measures absolute quality. *)

val computation_critical_path : Taskgraph.t -> float
(** Longest chain counting computation only. Communication can always
    be zeroed by co-location, computation cannot, so this bounds every
    schedule on any number of processors. *)

val work_bound : Taskgraph.t -> procs:int -> float
(** [total computation / p]: even perfectly balanced processors cannot
    finish earlier. *)

val fernandez_bound : Taskgraph.t -> procs:int -> float
(** Fernández–Bussell-style refinement of the work bound: for the most
    loaded window of the computation-only ASAP/ALAP interval structure,
    the work that {e must} execute inside a time window of length [L]
    cannot exceed [p * L]. Returns the smallest feasible makespan under
    that counting argument; always >= both other bounds is {e not}
    guaranteed in general, so combine with {!best}. *)

val best : Taskgraph.t -> procs:int -> float
(** Max of all bounds above. *)
