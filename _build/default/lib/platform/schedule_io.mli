open! Flb_taskgraph

(** Plain-text schedule files, so schedules survive the process that
    computed them (and can be validated or visualized later by the
    CLI).

    Format (whitespace-separated, ['#'] comments):

    {v
    schedule <num_tasks> <num_procs>
    assign <task> <proc> <start>
    v}

    One [assign] line per task, any order. *)

exception Parse_error of { line : int; message : string }

val to_string : Schedule.t -> string
(** @raise Invalid_argument if the schedule is incomplete. *)

val of_string : Taskgraph.t -> Machine.t -> string -> Schedule.t
(** Rebuilds the schedule against the given graph and machine.
    Assignments are replayed in dependency-compatible order, so any
    complete assignment of a DAG loads; feasibility is {e not} checked
    here — run {!Schedule.validate} on the result.
    @raise Parse_error on malformed input, task/processor ids out of
    range, duplicate or missing assignments, or header mismatch with
    the graph/machine. *)

val save : Schedule.t -> path:string -> unit

val load : Taskgraph.t -> Machine.t -> path:string -> Schedule.t
