open! Flb_taskgraph

(** Self-contained SVG Gantt charts (no external renderer needed; opens
    in any browser). One lane per processor, one labelled box per task,
    optional message arrows for cross-processor edges. *)

val of_schedule :
  ?width:int -> ?lane_height:int -> ?arrows:bool -> Schedule.t -> string
(** [width] is the drawing width in pixels (default 960), [lane_height]
    per-processor lane height (default 36), [arrows] draws a line per
    cross-processor message (default true; turn off for large graphs).
    @raise Invalid_argument if the schedule is incomplete. *)

val save :
  ?width:int -> ?lane_height:int -> ?arrows:bool -> Schedule.t -> path:string -> unit
