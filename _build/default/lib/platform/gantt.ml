open! Flb_taskgraph

let render ?(width = 72) s =
  let m = Schedule.makespan s in
  let buf = Buffer.create 256 in
  let scale t = if m <= 0.0 then 0 else int_of_float (t /. m *. float_of_int width) in
  for p = 0 to Schedule.num_procs s - 1 do
    let row = Bytes.make (width + 1) '.' in
    List.iter
      (fun t ->
        let a = scale (Schedule.start_time s t) in
        let b = max (a + 1) (scale (Schedule.finish_time s t)) in
        for i = a to min b width - 1 do
          Bytes.set row i '='
        done;
        let label = Printf.sprintf "t%d" t in
        String.iteri
          (fun i c -> if a + i <= width then Bytes.set row (a + i) c)
          label)
      (Schedule.tasks_on s p);
    Buffer.add_string buf (Printf.sprintf "p%-2d |%s|\n" p (Bytes.to_string row))
  done;
  Buffer.add_string buf (Printf.sprintf "     time 0 .. %g\n" m);
  Buffer.contents buf

let render_listing s =
  let tasks =
    List.init (Taskgraph.num_tasks (Schedule.graph s)) Fun.id
    |> List.filter (Schedule.is_scheduled s)
    |> List.sort (fun a b ->
           compare
             (Schedule.start_time s a, a)
             (Schedule.start_time s b, b))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "task  proc  start  finish\n";
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "t%-4d p%-4d %-6g %-6g\n" t (Schedule.proc s t)
           (Schedule.start_time s t) (Schedule.finish_time s t)))
    tasks;
  Buffer.contents buf
