open! Flb_taskgraph

type topology = Clique | Mesh of { rows : int; cols : int }

type t = { topology : topology; num_procs : int }

let clique ~num_procs =
  if num_procs < 1 then invalid_arg "Machine.clique: need at least one processor";
  { topology = Clique; num_procs }

let mesh ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Machine.mesh: dimensions must be positive";
  { topology = Mesh { rows; cols }; num_procs = rows * cols }

let num_procs m = m.num_procs

let procs m = List.init m.num_procs Fun.id

let check m p =
  if p < 0 || p >= m.num_procs then
    invalid_arg (Printf.sprintf "Machine.comm_time: processor %d outside machine" p)

let hops m ~src ~dst =
  if src = dst then 0
  else
    match m.topology with
    | Clique -> 1
    | Mesh { cols; _ } ->
      abs ((src / cols) - (dst / cols)) + abs ((src mod cols) - (dst mod cols))

let is_uniform m =
  match m.topology with Clique -> true | Mesh { rows; cols } -> rows * cols <= 2

let comm_time m ~src ~dst ~cost =
  check m src;
  check m dst;
  cost *. float_of_int (hops m ~src ~dst)

let pp ppf m =
  match m.topology with
  | Clique -> Format.fprintf ppf "clique of %d processors" m.num_procs
  | Mesh { rows; cols } -> Format.fprintf ppf "%dx%d mesh (%d processors)" rows cols m.num_procs
