open! Flb_taskgraph

(** Chrome trace-event export of schedules.

    Produces the JSON consumed by [chrome://tracing] / Perfetto: one
    timeline row per processor, one complete event per task (plus flow
    arrows for cross-processor messages), which is the most practical
    way to eyeball paper-scale schedules. Times are emitted in
    microseconds (the trace viewer's native unit), scaling 1 cost unit
    to 1 us. *)

val of_schedule : ?name:string -> Schedule.t -> string
(** JSON string ([trace-event "traceEvents" array] format). Includes a
    flow event per cross-processor edge so message routing is visible.
    @raise Invalid_argument if the schedule is incomplete. *)

val save : ?name:string -> Schedule.t -> path:string -> unit
