open! Flb_taskgraph

(** Text Gantt charts for eyeballing small schedules. *)

val render : ?width:int -> Schedule.t -> string
(** One row per processor; each task is drawn as a labelled box scaled so
    the makespan spans [width] columns (default 72). Unscheduled tasks
    are ignored. Intended for schedules of up to a few dozen tasks. *)

val render_listing : Schedule.t -> string
(** Tabular listing, one line per task in start-time order:
    [task  proc  start  finish]. *)
