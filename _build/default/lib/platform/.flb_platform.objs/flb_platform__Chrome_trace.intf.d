lib/platform/chrome_trace.mli: Flb_taskgraph Schedule
