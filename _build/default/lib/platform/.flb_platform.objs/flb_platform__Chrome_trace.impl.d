lib/platform/chrome_trace.ml: Buffer Flb_taskgraph Fun Printf Schedule Taskgraph
