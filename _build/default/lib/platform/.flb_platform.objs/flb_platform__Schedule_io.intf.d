lib/platform/schedule_io.mli: Flb_taskgraph Machine Schedule Taskgraph
