lib/platform/machine.mli: Flb_taskgraph Format
