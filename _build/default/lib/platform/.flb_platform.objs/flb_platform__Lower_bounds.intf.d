lib/platform/lower_bounds.mli: Flb_taskgraph Taskgraph
