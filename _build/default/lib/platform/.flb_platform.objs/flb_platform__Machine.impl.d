lib/platform/machine.ml: Flb_taskgraph Format Fun List Printf
