lib/platform/svg.mli: Flb_taskgraph Schedule
