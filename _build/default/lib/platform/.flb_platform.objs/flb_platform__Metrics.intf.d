lib/platform/metrics.mli: Flb_taskgraph Schedule
