lib/platform/schedule_io.ml: Array Buffer Flb_taskgraph Float Fun In_channel List Machine Printf Schedule String Taskgraph Topo
