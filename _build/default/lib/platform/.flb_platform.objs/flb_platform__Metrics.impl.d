lib/platform/metrics.ml: Array Flb_taskgraph Float Levels List Schedule Taskgraph
