lib/platform/svg.ml: Array Buffer Flb_taskgraph Float Fun Printf Schedule Taskgraph
