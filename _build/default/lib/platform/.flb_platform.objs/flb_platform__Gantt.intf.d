lib/platform/gantt.mli: Flb_taskgraph Schedule
