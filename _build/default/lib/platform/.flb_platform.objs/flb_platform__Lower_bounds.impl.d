lib/platform/lower_bounds.ml: Array Flb_taskgraph Float Levels List Taskgraph Topo
