lib/platform/schedule.ml: Array Flb_prelude Flb_taskgraph Float Format Fun List Machine Option Printf Taskgraph
