lib/platform/gantt.ml: Buffer Bytes Flb_taskgraph Fun List Printf Schedule String Taskgraph
