lib/platform/schedule.mli: Flb_taskgraph Format Machine Taskgraph
