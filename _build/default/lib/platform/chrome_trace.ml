open! Flb_taskgraph

let of_schedule ?(name = "flb-schedule") sched =
  let g = Schedule.graph sched in
  let n = Taskgraph.num_tasks g in
  for t = 0 to n - 1 do
    if not (Schedule.is_scheduled sched t) then
      invalid_arg "Chrome_trace.of_schedule: incomplete schedule"
  done;
  let buf = Buffer.create 4096 in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  (* process metadata: one row per processor *)
  emit "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":%S}}" name;
  for p = 0 to Schedule.num_procs sched - 1 do
    emit
      "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"processor %d\"}}"
      p p
  done;
  (* one complete event per task *)
  for t = 0 to n - 1 do
    emit
      "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":\"t%d\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"comp\":%g}}"
      (Schedule.proc sched t) t (Schedule.start_time sched t)
      (Taskgraph.comp g t) (Taskgraph.comp g t)
  done;
  (* flow arrows for cross-processor messages *)
  let flow_id = ref 0 in
  Taskgraph.iter_edges
    (fun src dst w ->
      if Schedule.proc sched src <> Schedule.proc sched dst then begin
        incr flow_id;
        emit
          "{\"ph\":\"s\",\"pid\":0,\"tid\":%d,\"name\":\"msg\",\"id\":%d,\"ts\":%.3f}"
          (Schedule.proc sched src) !flow_id
          (Schedule.finish_time sched src);
        emit
          "{\"ph\":\"f\",\"pid\":0,\"tid\":%d,\"name\":\"msg\",\"id\":%d,\"ts\":%.3f,\"bp\":\"e\",\"args\":{\"comm\":%g}}"
          (Schedule.proc sched dst) !flow_id
          (Schedule.finish_time sched src +. w)
          w
      end)
    g;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let save ?name sched ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_schedule ?name sched))
