open! Flb_taskgraph
open! Flb_platform

(** Named scheduling algorithms, as compared in the paper. *)

type t = {
  name : string;
  describe : string;
  run : Taskgraph.t -> Machine.t -> Schedule.t;
}

val flb : t

val etf : t

val mcp : t
(** The lower-cost random-tie-break variant the paper benchmarks. *)

val fcp : t

val dsc_llb : t

val paper_set : t list
(** The five algorithms of Figures 2 and 4: MCP, ETF, DSC-LLB, FCP,
    FLB — in the paper's plotting order. *)

val extended_set : t list
(** [paper_set] plus the extensions: HLFET, DLS, ISH, SARKAR-LLB, and
    the naive round-robin baseline. *)

val find : string -> t option
(** Case-insensitive lookup by [name] within {!extended_set}. *)

val names : t list -> string list
