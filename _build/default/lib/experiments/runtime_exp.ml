open! Flb_platform

type cell = { algorithm : string; procs : int; seconds : float }

let time_once f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

let run ?(algorithms = Registry.paper_set) ?(suite = Workload_suite.fig4_suite ())
    ?(ccrs = Workload_suite.paper_ccrs) ?(procs = Workload_suite.paper_procs)
    ?(repeats = 3) ?(instances_per_cell = 2) () =
  let graphs =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun ccr -> Workload_suite.instances ~count:instances_per_cell workload ~ccr)
          ccrs)
      suite
  in
  let num_graphs = List.length graphs in
  List.concat_map
    (fun p ->
      let machine = Machine.clique ~num_procs:p in
      List.map
        (fun (algo : Registry.t) ->
          let best = ref infinity in
          for _ = 1 to repeats do
            let total =
              time_once (fun () ->
                  List.iter (fun g -> ignore (algo.run g machine)) graphs)
            in
            let per_run = total /. float_of_int num_graphs in
            if per_run < !best then best := per_run
          done;
          { algorithm = algo.Registry.name; procs = p; seconds = !best })
        algorithms)
    procs

let render cells =
  let algorithms =
    List.fold_left
      (fun acc c -> if List.mem c.algorithm acc then acc else acc @ [ c.algorithm ])
      [] cells
  in
  let procs = List.sort_uniq compare (List.map (fun c -> c.procs) cells) in
  let table = Table.create ~header:("P" :: List.map (fun a -> a ^ " [ms]") algorithms) in
  List.iter
    (fun p ->
      let row =
        List.map
          (fun a ->
            match
              List.find_opt (fun c -> c.procs = p && c.algorithm = a) cells
            with
            | Some c -> Table.cell_float ~decimals:3 (c.seconds *. 1000.0)
            | None -> "-")
          algorithms
      in
      Table.add_row table (string_of_int p :: row))
    procs;
  "Scheduling cost per run (V = 2000 graphs)\n" ^ Table.render table

let to_csv cells =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "algorithm,procs,seconds\n";
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "%s,%d,%.9f\n" c.algorithm c.procs c.seconds))
    cells;
  Buffer.contents buf
