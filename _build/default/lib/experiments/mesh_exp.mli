(** Extension experiment E13: FLB beyond the uniform machine.

    The two-candidate lemma (paper Theorem 3) needs uniform
    inter-processor latencies. On a 2-D mesh with hop-proportional
    latency FLB still runs — its start times are recomputed so
    schedules stay feasible — but its selection is no longer provably
    earliest-start. This experiment measures what that costs: per
    iteration (fraction of suboptimal steps, worst start-time ratio)
    and end to end (makespan vs ETF, whose exhaustive scan stays
    step-optimal on any topology). *)

type cell = {
  workload : string;
  ccr : float;
  machine_name : string;
  flb_makespan : float;
  etf_makespan : float;
  mcp_makespan : float;
  suboptimal_fraction : float;  (** FLB iterations beaten by the scan *)
  max_start_ratio : float;
}

val run :
  ?suite:Workload_suite.workload list -> ?ccrs:float list -> unit -> cell list
(** Defaults: Fig. 4 suite at 2000 tasks, CCR {0.2, 5.0}, on a
    16-processor clique and a 4x4 mesh. *)

val render : cell list -> string
