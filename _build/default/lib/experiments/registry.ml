open! Flb_taskgraph
open! Flb_platform

type t = {
  name : string;
  describe : string;
  run : Taskgraph.t -> Machine.t -> Schedule.t;
}

let flb =
  {
    name = "FLB";
    describe = "Fast Load Balancing (this paper); O(V(logW + logP) + E)";
    run = (fun g m -> Flb_core.Flb.run g m);
  }

let etf =
  {
    name = "ETF";
    describe = "Earliest Task First; O(W(E+V)P)";
    run = Flb_schedulers.Etf.run;
  }

let mcp =
  {
    name = "MCP";
    describe = "Modified Critical Path, random tie-break; O(VlogV + (E+V)P)";
    run = (fun g m -> Flb_schedulers.Mcp.run g m);
  }

let fcp =
  {
    name = "FCP";
    describe = "Fast Critical Path; O(VlogP + E)";
    run = Flb_schedulers.Fcp.run;
  }

let dsc_llb =
  {
    name = "DSC-LLB";
    describe = "DSC clustering + LLB mapping; O((E+V)logV)";
    run = (fun g m -> Flb_schedulers.Dsc_llb.run g m);
  }

let paper_set = [ mcp; etf; dsc_llb; fcp; flb ]

let extended_set =
  paper_set
  @ [
      {
        name = "HLFET";
        describe = "Highest Level First with Estimated Times (extension)";
        run = Flb_schedulers.Hlfet.run;
      };
      {
        name = "DLS";
        describe = "Dynamic Level Scheduling (extension)";
        run = Flb_schedulers.Dls.run;
      };
      {
        name = "ISH";
        describe = "Insertion Scheduling Heuristic (extension)";
        run = Flb_schedulers.Ish.run;
      };
      {
        name = "SARKAR-LLB";
        describe = "Sarkar internalization clustering + LLB mapping (extension)";
        run =
          (fun g m -> Flb_schedulers.Llb.run g m (Flb_schedulers.Sarkar.cluster g));
      };
      {
        name = "RR";
        describe = "round-robin placement (naive baseline)";
        run = Flb_schedulers.Naive.round_robin;
      };
    ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun a -> String.lowercase_ascii a.name = lower) extended_set

let names algos = List.map (fun a -> a.name) algos
