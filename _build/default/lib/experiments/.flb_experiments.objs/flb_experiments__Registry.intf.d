lib/experiments/registry.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
