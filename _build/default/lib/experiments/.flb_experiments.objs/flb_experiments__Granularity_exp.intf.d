lib/experiments/granularity_exp.mli:
