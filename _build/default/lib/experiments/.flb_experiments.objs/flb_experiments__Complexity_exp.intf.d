lib/experiments/complexity_exp.mli: Registry
