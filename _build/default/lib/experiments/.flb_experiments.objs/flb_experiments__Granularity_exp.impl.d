lib/experiments/granularity_exp.ml: Coarsen Flb_core Flb_platform Flb_prelude Flb_taskgraph Flb_workloads Hashtbl List Machine Printf Rng Schedule Sys Table Taskgraph
