lib/experiments/speedup_exp.ml: Array Buffer Flb_platform Flb_prelude List Machine Metrics Printf Registry Stats Table Workload_suite
