lib/experiments/mesh_exp.ml: Flb_core Flb_platform Flb_schedulers List Machine Printf Schedule Table Workload_suite
