lib/experiments/workload_suite.mli: Flb_taskgraph Flb_workloads Taskgraph
