lib/experiments/mesh_exp.mli: Workload_suite
