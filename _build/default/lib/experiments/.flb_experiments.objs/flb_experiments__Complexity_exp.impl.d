lib/experiments/complexity_exp.ml: Buffer Flb_core Flb_platform Flb_taskgraph List Machine Printf Registry Sys Table Taskgraph Workload_suite
