lib/experiments/duplication_exp.ml: Buffer Flb_duplication Flb_platform Flb_prelude Flb_taskgraph Flb_workloads Hashtbl List Machine Printf Registry Rng Schedule Sys Table Taskgraph
