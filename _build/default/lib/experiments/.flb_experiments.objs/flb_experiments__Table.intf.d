lib/experiments/table.mli:
