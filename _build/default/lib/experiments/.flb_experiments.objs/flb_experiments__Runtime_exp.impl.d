lib/experiments/runtime_exp.ml: Buffer Flb_platform List Machine Printf Registry Sys Table Workload_suite
