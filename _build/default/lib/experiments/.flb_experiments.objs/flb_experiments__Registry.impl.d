lib/experiments/registry.ml: Flb_core Flb_platform Flb_schedulers Flb_taskgraph List Machine Schedule String Taskgraph
