lib/experiments/contention_exp.ml: Flb_platform Flb_sim Float List Machine Printf Registry Schedule Table Workload_suite
