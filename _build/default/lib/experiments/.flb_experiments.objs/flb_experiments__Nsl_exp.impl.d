lib/experiments/nsl_exp.ml: Array Buffer Flb_platform Flb_prelude Flb_schedulers Flb_taskgraph List Machine Metrics Parallel Printf Registry Stats Table Workload_suite
