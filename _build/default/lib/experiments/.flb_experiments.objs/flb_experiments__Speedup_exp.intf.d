lib/experiments/speedup_exp.mli: Registry Workload_suite
