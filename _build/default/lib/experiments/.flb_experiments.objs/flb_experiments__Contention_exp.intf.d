lib/experiments/contention_exp.mli: Registry Workload_suite
