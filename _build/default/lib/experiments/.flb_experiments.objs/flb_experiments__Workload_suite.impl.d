lib/experiments/workload_suite.ml: Flb_prelude Flb_taskgraph Flb_workloads Hashtbl List Printf Rng Taskgraph
