lib/experiments/nsl_exp.mli: Registry Workload_suite
