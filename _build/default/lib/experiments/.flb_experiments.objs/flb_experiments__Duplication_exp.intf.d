lib/experiments/duplication_exp.mli:
