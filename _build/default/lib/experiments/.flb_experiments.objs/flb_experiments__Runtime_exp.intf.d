lib/experiments/runtime_exp.mli: Registry Workload_suite
