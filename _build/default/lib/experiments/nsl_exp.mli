(** Figure 4 — normalized schedule lengths.

    For every workload, CCR and processor count, each algorithm's
    makespan is averaged over the seeded instances and normalized by
    MCP's makespan on the same instances (NSL; the paper's Fig. 4
    y-axis, where MCP is the 1.00 line). *)

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  algorithm : string;
  nsl_mean : float;
  nsl_min : float;
  nsl_max : float;
}

val run :
  ?domains:int ->
  ?algorithms:Registry.t list ->
  ?suite:Workload_suite.workload list ->
  ?ccrs:float list ->
  ?procs:int list ->
  ?instances_per_cell:int ->
  unit ->
  cell list
(** Defaults reproduce the paper: {!Registry.paper_set},
    {!Workload_suite.fig4_suite} at 2000 tasks, CCR {0.2, 5.0},
    P in {2 .. 32}, 5 instances. NSL is computed per instance and
    averaged. [domains] > 1 fans the grid out over that many OCaml 5
    domains ({!Flb_prelude.Parallel.map}); results are identical to the
    sequential run. *)

val render : cell list -> string
(** One table per (workload, CCR) panel: rows = P, columns =
    algorithms, mean NSL in each cell. *)

val to_csv : cell list -> string
