open! Flb_platform

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  algorithm : string;
  analytic : float;
  sim_unlimited : float;
  sim_two_ports : float;
  sim_one_port : float;
}

let replay ?send_ports s =
  match Flb_sim.Simulator.run ?send_ports s with
  | Ok o -> o.Flb_sim.Simulator.makespan
  | Error _ -> Float.nan

let run ?(algorithms = [ Registry.flb; Registry.mcp ])
    ?(suite = Workload_suite.fig4_suite ()) ?(ccrs = Workload_suite.paper_ccrs)
    ?(procs = [ 8; 32 ]) () =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun ccr ->
          let g = Workload_suite.instance workload ~ccr ~seed:1 in
          List.concat_map
            (fun p ->
              let machine = Machine.clique ~num_procs:p in
              List.map
                (fun (algo : Registry.t) ->
                  let s = algo.run g machine in
                  {
                    workload = workload.Workload_suite.name;
                    ccr;
                    procs = p;
                    algorithm = algo.name;
                    analytic = Schedule.makespan s;
                    sim_unlimited = replay s;
                    sim_two_ports = replay ~send_ports:2 s;
                    sim_one_port = replay ~send_ports:1 s;
                  })
                algorithms)
            procs)
        ccrs)
    suite

let render cells =
  let table =
    Table.create
      ~header:
        [
          "workload"; "CCR"; "P"; "algorithm"; "analytic"; "sim free";
          "2 ports"; "1 port"; "slowdown@1";
        ]
  in
  List.iter
    (fun c ->
      Table.add_row table
        [
          c.workload;
          Printf.sprintf "%g" c.ccr;
          string_of_int c.procs;
          c.algorithm;
          Printf.sprintf "%.1f" c.analytic;
          Printf.sprintf "%.1f" c.sim_unlimited;
          Printf.sprintf "%.1f" c.sim_two_ports;
          Printf.sprintf "%.1f" c.sim_one_port;
          Printf.sprintf "%.2fx" (c.sim_one_port /. c.analytic);
        ])
    cells;
  "Replay under NIC contention (outgoing ports per processor)\n"
  ^ Table.render table
