open! Flb_taskgraph

(** The paper's evaluation workloads (Section 6): LU decomposition,
    Laplace equation solver, a stencil algorithm, and FFT, each sized to
    about [V = 2000] tasks, with random weights drawn per instance at
    CCR 0.2 (coarse grain) or 5.0 (fine grain) — five seeded instances
    per cell. *)

type workload = {
  name : string;
  structure : Taskgraph.t;  (** unit-weight dependence structure *)
}

val lu : ?tasks:int -> unit -> workload

val laplace : ?tasks:int -> unit -> workload

val stencil : ?tasks:int -> unit -> workload

val fft : ?tasks:int -> unit -> workload

val fig3_suite : ?tasks:int -> unit -> workload list
(** LU, Laplace, Stencil, FFT — the speedup figure's curves. [tasks]
    defaults to the paper's 2000. *)

val fig4_suite : ?tasks:int -> unit -> workload list
(** LU, Stencil, Laplace — the NSL figure's panels. *)

val random_suite : ?tasks:int -> unit -> workload list
(** Irregular structures beyond the paper's figures (the paper's
    technical-report companion evaluates "a larger set of problems"):
    a random layered DAG, a sparse G(n,p) DAG, an in-tree, an out-tree,
    a fork–join chain and a wavefront diamond, each sized near
    [tasks]. Structures are seeded and deterministic. *)

val paper_ccrs : float list
(** [\[0.2; 5.0\]]. *)

val paper_procs : int list
(** [\[2; 4; 8; 16; 32\]]. *)

val instance :
  ?dist:Flb_workloads.Weights.distribution ->
  workload ->
  ccr:float ->
  seed:int ->
  Taskgraph.t
(** One random-weight instance: deterministic in [(workload, ccr, seed)]. *)

val instances :
  ?dist:Flb_workloads.Weights.distribution ->
  ?count:int ->
  workload ->
  ccr:float ->
  Taskgraph.t list
(** The paper's per-cell sample: [count] (default 5) instances with
    seeds [1 .. count]. *)
