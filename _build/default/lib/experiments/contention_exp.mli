(** Extension experiment E11: sensitivity to the contention-free
    assumption.

    The paper's machine model assumes inter-processor communication
    without contention. This experiment replays schedules in the
    discrete-event machine with a bounded number of outgoing ports per
    processor and reports how much the realized makespan exceeds the
    analytic (contention-free) one — the price of the modelling
    assumption, per algorithm and granularity. *)

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  algorithm : string;
  analytic : float;  (** contention-free makespan the scheduler computed *)
  sim_unlimited : float;  (** replay with unlimited ports (must equal analytic) *)
  sim_two_ports : float;
  sim_one_port : float;
}

val run :
  ?algorithms:Registry.t list ->
  ?suite:Workload_suite.workload list ->
  ?ccrs:float list ->
  ?procs:int list ->
  unit ->
  cell list
(** Defaults: FLB and MCP on the Fig. 4 suite at 2000 tasks,
    CCR {0.2, 5.0}, P in {8, 32}; seed 1 instances. *)

val render : cell list -> string
