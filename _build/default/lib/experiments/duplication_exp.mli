(** Extension experiment E8: what duplication buys (and costs).

    The paper's introduction positions duplication-based schedulers as
    higher quality at significantly higher scheduling cost. This
    experiment quantifies both on fork-heavy graphs (out-trees and
    fork–join chains, where re-computing a producer beats paying its
    message) across CCR values: schedule length of DSH versus the
    non-duplicating schedulers, the number of extra copies placed, and
    the scheduling time. *)

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  algorithm : string;
  makespan : float;
  copies : int;  (** total placed copies; V for non-duplicating rows *)
  seconds : float;
}

val run :
  ?ccrs:float list -> ?procs:int list -> ?tasks:int -> unit -> cell list
(** Defaults: out-tree, fork-join and LU structures of about 500 tasks,
    CCR in {0.2, 2.0, 5.0}, P in {4, 16}; algorithms DSH, CPFD, FLB,
    MCP, ETF. *)

val render : cell list -> string
