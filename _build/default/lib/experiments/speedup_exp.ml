open! Flb_platform
open! Flb_prelude

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  speedup_mean : float;
  speedup_min : float;
  speedup_max : float;
}

let run ?(algorithm = Registry.flb) ?(suite = Workload_suite.fig3_suite ())
    ?(ccrs = Workload_suite.paper_ccrs) ?(procs = 1 :: Workload_suite.paper_procs)
    ?(instances_per_cell = 5) () =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun ccr ->
          let graphs =
            Workload_suite.instances ~count:instances_per_cell workload ~ccr
          in
          List.map
            (fun p ->
              let machine = Machine.clique ~num_procs:p in
              let speedups =
                List.map
                  (fun g -> Metrics.speedup (algorithm.Registry.run g machine))
                  graphs
                |> Array.of_list
              in
              {
                workload = workload.Workload_suite.name;
                ccr;
                procs = p;
                speedup_mean = Stats.mean speedups;
                speedup_min = Stats.min speedups;
                speedup_max = Stats.max speedups;
              })
            procs)
        ccrs)
    suite

let render cells =
  let buf = Buffer.create 1024 in
  let ccrs = List.sort_uniq compare (List.map (fun c -> c.ccr) cells) in
  List.iter
    (fun ccr ->
      let panel = List.filter (fun c -> c.ccr = ccr) cells in
      let workloads =
        List.fold_left
          (fun acc c -> if List.mem c.workload acc then acc else acc @ [ c.workload ])
          [] panel
      in
      let procs = List.sort_uniq compare (List.map (fun c -> c.procs) panel) in
      Buffer.add_string buf (Printf.sprintf "FLB speedup -- CCR = %g\n" ccr);
      let table = Table.create ~header:("P" :: workloads) in
      List.iter
        (fun p ->
          let row =
            List.map
              (fun w ->
                match
                  List.find_opt (fun c -> c.procs = p && c.workload = w) panel
                with
                | Some c -> Table.cell_float c.speedup_mean
                | None -> "-")
              workloads
          in
          Table.add_row table (string_of_int p :: row))
        procs;
      Buffer.add_string buf (Table.render table);
      Buffer.add_char buf '\n')
    ccrs;
  Buffer.contents buf

let to_csv cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "workload,ccr,procs,speedup_mean,speedup_min,speedup_max\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%g,%d,%.6f,%.6f,%.6f\n" c.workload c.ccr c.procs
           c.speedup_mean c.speedup_min c.speedup_max))
    cells;
  Buffer.contents buf
