(** Figure 2 — scheduling algorithm costs (running times).

    Wall-clock cost of {e running the scheduler itself} on the paper's
    graphs, per algorithm and processor count. Absolute numbers differ
    from the paper's 1999 Pentium Pro; the claims that must reproduce
    are the ordering and the scaling shape: ETF far costliest and
    growing steeply with P; MCP growing moderately with P; DSC-LLB flat
    in P; FCP and FLB cheapest and nearly flat.

    Measurement here is the simple repeat-and-take-best used for the
    summary table; bench/main.exe additionally runs the same cells
    under Bechamel for rigorous statistics. *)

type cell = {
  algorithm : string;
  procs : int;
  seconds : float;  (** best-of-repeats mean time per scheduling run *)
}

val run :
  ?algorithms:Registry.t list ->
  ?suite:Workload_suite.workload list ->
  ?ccrs:float list ->
  ?procs:int list ->
  ?repeats:int ->
  ?instances_per_cell:int ->
  unit ->
  cell list
(** Each cell times every instance of every (workload, ccr) pair once
    per repeat and records the best mean over repeats. Defaults: the
    paper's five algorithms, Fig. 4 suite, CCR {0.2, 5.0},
    P in {2 .. 32}, 3 repeats, 2 instances per cell (the cost experiment
    needs fewer samples than the quality one; Bechamel covers rigor). *)

val render : cell list -> string
(** Rows = P, columns = algorithms, milliseconds per run. *)

val to_csv : cell list -> string
