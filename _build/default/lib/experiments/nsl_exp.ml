open! Flb_taskgraph
open! Flb_platform
open! Flb_prelude

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  algorithm : string;
  nsl_mean : float;
  nsl_min : float;
  nsl_max : float;
}

let run ?(domains = 1) ?(algorithms = Registry.paper_set)
    ?(suite = Workload_suite.fig4_suite ()) ?(ccrs = Workload_suite.paper_ccrs)
    ?(procs = Workload_suite.paper_procs) ?(instances_per_cell = 5) () =
  (* One job per (workload, ccr, P) grid point; jobs are independent and
     deterministic, so they can fan out over domains. *)
  let jobs =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun ccr -> List.map (fun p -> (workload, ccr, p)) procs)
          ccrs)
      suite
  in
  let run_job (workload, ccr, p) =
    let graphs = Workload_suite.instances ~count:instances_per_cell workload ~ccr in
    let machine = Machine.clique ~num_procs:p in
    let references =
      List.map (fun g -> Flb_schedulers.Mcp.schedule_length g machine) graphs
    in
    List.map
      (fun (algo : Registry.t) ->
        let nsls =
          List.map2
            (fun g reference -> Metrics.nsl (algo.run g machine) ~reference)
            graphs references
          |> Array.of_list
        in
        {
          workload = workload.Workload_suite.name;
          ccr;
          procs = p;
          algorithm = algo.Registry.name;
          nsl_mean = Stats.mean nsls;
          nsl_min = Stats.min nsls;
          nsl_max = Stats.max nsls;
        })
      algorithms
  in
  List.concat (Parallel.map ~domains run_job jobs)

let panels cells =
  List.sort_uniq compare (List.map (fun c -> (c.workload, c.ccr)) cells)

let render cells =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (workload, ccr) ->
      let panel =
        List.filter (fun c -> c.workload = workload && c.ccr = ccr) cells
      in
      let algorithms =
        (* preserve first-appearance order *)
        List.fold_left
          (fun acc c -> if List.mem c.algorithm acc then acc else acc @ [ c.algorithm ])
          [] panel
      in
      let procs = List.sort_uniq compare (List.map (fun c -> c.procs) panel) in
      Buffer.add_string buf
        (Printf.sprintf "NSL vs MCP -- %s, CCR = %g\n" workload ccr);
      let table = Table.create ~header:("P" :: algorithms) in
      List.iter
        (fun p ->
          let row =
            List.map
              (fun a ->
                match
                  List.find_opt (fun c -> c.procs = p && c.algorithm = a) panel
                with
                | Some c -> Table.cell_float c.nsl_mean
                | None -> "-")
              algorithms
          in
          Table.add_row table (string_of_int p :: row))
        procs;
      Buffer.add_string buf (Table.render table);
      Buffer.add_char buf '\n')
    (panels cells);
  Buffer.contents buf

let to_csv cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "workload,ccr,procs,algorithm,nsl_mean,nsl_min,nsl_max\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%g,%d,%s,%.6f,%.6f,%.6f\n" c.workload c.ccr c.procs
           c.algorithm c.nsl_mean c.nsl_min c.nsl_max))
    cells;
  Buffer.contents buf
