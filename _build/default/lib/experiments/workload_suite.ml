open! Flb_taskgraph
open! Flb_prelude
module W = Flb_workloads

type workload = { name : string; structure : Taskgraph.t }

let default_tasks = 2000

let lu ?(tasks = default_tasks) () =
  let n = W.Lu.matrix_size_for_tasks tasks in
  { name = "LU"; structure = W.Lu.structure ~matrix_size:n }

let laplace ?(tasks = default_tasks) () =
  let grid, sweeps = W.Laplace.dims_for_tasks tasks in
  { name = "Laplace"; structure = W.Laplace.structure ~grid ~sweeps }

let stencil ?(tasks = default_tasks) () =
  let width, layers = W.Stencil.dims_for_tasks tasks in
  { name = "Stencil"; structure = W.Stencil.structure ~width ~layers }

let fft ?(tasks = default_tasks) () =
  let points = W.Fft.points_for_tasks tasks in
  { name = "FFT"; structure = W.Fft.structure ~points }

let fig3_suite ?tasks () = [ lu ?tasks (); laplace ?tasks (); stencil ?tasks (); fft ?tasks () ]

let fig4_suite ?tasks () = [ lu ?tasks (); stencil ?tasks (); laplace ?tasks () ]

let random_suite ?(tasks = 2000) () =
  let module S = W.Shapes in
  let tree_depth branching =
    (* smallest depth whose complete tree reaches [tasks] nodes *)
    let rec search d nodes =
      if nodes >= tasks then d
      else search (d + 1) (nodes + int_of_float (float_of_int branching ** float_of_int (d + 1)))
    in
    search 0 1
  in
  [
    {
      name = "layered";
      structure =
        W.Random_dag.layered ~rng:(Rng.create ~seed:71) ~layers:(tasks / 25)
          ~min_width:5 ~max_width:45 ~edge_probability:0.12;
    };
    {
      name = "gnp";
      structure =
        W.Random_dag.gnp ~rng:(Rng.create ~seed:72) ~tasks
          ~edge_probability:(2.5 /. float_of_int tasks *. 2.0);
    };
    { name = "in-tree"; structure = S.in_tree ~branching:3 ~depth:(tree_depth 3) };
    { name = "out-tree"; structure = S.out_tree ~branching:3 ~depth:(tree_depth 3) };
    {
      name = "fork-join";
      structure = S.fork_join ~branches:16 ~stages:(max 1 (tasks / 17));
    };
    {
      name = "diamond";
      structure = S.diamond ~size:(int_of_float (ceil (sqrt (float_of_int tasks))));
    };
  ]

let paper_ccrs = [ 0.2; 5.0 ]

let paper_procs = [ 2; 4; 8; 16; 32 ]

(* Stable per-cell seeding: mix the workload name, CCR and seed into one
   RNG seed so instances are reproducible regardless of evaluation
   order. *)
let cell_seed workload ~ccr ~seed =
  let h = Hashtbl.hash (workload.name, Printf.sprintf "%.6f" ccr, seed) in
  (h * 2654435761) land max_int

let instance ?dist workload ~ccr ~seed =
  let rng = Rng.create ~seed:(cell_seed workload ~ccr ~seed) in
  W.Weights.assign ?dist workload.structure ~rng ~ccr

let instances ?dist ?(count = 5) workload ~ccr =
  List.init count (fun i -> instance ?dist workload ~ccr ~seed:(i + 1))
