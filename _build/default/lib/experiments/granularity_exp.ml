open! Flb_taskgraph
open! Flb_platform
open! Flb_prelude

type cell = {
  workload : string;
  ccr : float;
  max_grain : float;
  coarse_tasks : int;
  makespan : float;
  sched_seconds : float;
}

let structures () =
  [
    ("chains", Flb_workloads.Shapes.parallel_chains ~count:40 ~length:50);
    ( "LU",
      Flb_workloads.Lu.structure
        ~matrix_size:(Flb_workloads.Lu.matrix_size_for_tasks 2000) );
  ]

let run ?(procs = 8) ?(ccrs = [ 0.2; 5.0 ]) ?(grains = [ 1.0; 4.0; 16.0; infinity ])
    () =
  let machine = Machine.clique ~num_procs:procs in
  List.concat_map
    (fun (name, structure) ->
      List.concat_map
        (fun ccr ->
          let rng = Rng.create ~seed:(Hashtbl.hash (name, int_of_float (ccr *. 10.))) in
          let g = Flb_workloads.Weights.assign structure ~rng ~ccr in
          List.map
            (fun max_grain ->
              let coarse, _ = Coarsen.merge_chains ~max_grain g in
              let t0 = Sys.time () in
              let s = Flb_core.Flb.run coarse machine in
              let dt = Sys.time () -. t0 in
              {
                workload = name;
                ccr;
                max_grain;
                coarse_tasks = Taskgraph.num_tasks coarse;
                makespan = Schedule.makespan s;
                sched_seconds = dt;
              })
            grains)
        ccrs)
    (structures ())

let render cells =
  let table =
    Table.create
      ~header:[ "workload"; "CCR"; "grain cap"; "V coarse"; "FLB makespan"; "sched [ms]" ]
  in
  let last = ref ("", 0.0) in
  List.iter
    (fun c ->
      if !last <> (c.workload, c.ccr) && fst !last <> "" then Table.add_separator table;
      last := (c.workload, c.ccr);
      Table.add_row table
        [
          c.workload;
          Printf.sprintf "%g" c.ccr;
          (if c.max_grain = infinity then "unlimited" else Printf.sprintf "%g" c.max_grain);
          string_of_int c.coarse_tasks;
          Printf.sprintf "%.1f" c.makespan;
          Printf.sprintf "%.2f" (c.sched_seconds *. 1000.0);
        ])
    cells;
  "Grain packing ahead of FLB (P = 8)\n" ^ Table.render table
