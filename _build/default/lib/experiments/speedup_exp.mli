(** Figure 3 — FLB speedup.

    For each workload and CCR, the speedup (sequential time over FLB's
    makespan) averaged over the seeded instances, for P = 1 .. 32. The
    paper's qualitative claims: Stencil and FFT scale near-linearly;
    LU and Laplace flatten at large P (join-limited parallelism); CCR
    5.0 curves sit well below CCR 0.2 curves. *)

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  speedup_mean : float;
  speedup_min : float;
  speedup_max : float;
}

val run :
  ?algorithm:Registry.t ->
  ?suite:Workload_suite.workload list ->
  ?ccrs:float list ->
  ?procs:int list ->
  ?instances_per_cell:int ->
  unit ->
  cell list
(** Defaults reproduce the paper: FLB on {!Workload_suite.fig3_suite},
    CCR {0.2, 5.0}, P in {1, 2, 4, 8, 16, 32}, 5 instances. *)

val render : cell list -> string
(** One table per CCR: rows = P, columns = workloads. *)

val to_csv : cell list -> string
