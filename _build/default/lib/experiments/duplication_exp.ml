open! Flb_taskgraph
open! Flb_platform
open! Flb_prelude

type cell = {
  workload : string;
  ccr : float;
  procs : int;
  algorithm : string;
  makespan : float;
  copies : int;
  seconds : float;
}

let time f =
  let t0 = Sys.time () in
  let y = f () in
  (y, Sys.time () -. t0)

let structures ~tasks =
  [
    ( "out-tree",
      Flb_workloads.Shapes.out_tree ~branching:3
        ~depth:(int_of_float (ceil (log (float_of_int tasks) /. log 3.0))) );
    ("fork-join", Flb_workloads.Shapes.fork_join ~branches:10 ~stages:(tasks / 11));
    ( "LU",
      Flb_workloads.Lu.structure
        ~matrix_size:(Flb_workloads.Lu.matrix_size_for_tasks tasks) );
  ]

let run ?(ccrs = [ 0.2; 2.0; 5.0 ]) ?(procs = [ 4; 16 ]) ?(tasks = 500) () =
  List.concat_map
    (fun (name, structure) ->
      List.concat_map
        (fun ccr ->
          let rng = Rng.create ~seed:(Hashtbl.hash (name, int_of_float (ccr *. 10.))) in
          let g = Flb_workloads.Weights.assign structure ~rng ~ccr in
          let v = Taskgraph.num_tasks g in
          List.concat_map
            (fun p ->
              let machine = Machine.clique ~num_procs:p in
              let dup_cell label run =
                let s, seconds = time (fun () -> run g machine) in
                {
                  workload = name;
                  ccr;
                  procs = p;
                  algorithm = label;
                  makespan = Flb_duplication.Dup_schedule.makespan s;
                  copies = Flb_duplication.Dup_schedule.copies_placed s;
                  seconds;
                }
              in
              let dsh_cell = dup_cell "DSH" (fun g m -> Flb_duplication.Dsh.run g m) in
              let cpfd_cell =
                dup_cell "CPFD" (fun g m -> Flb_duplication.Cpfd.run g m)
              in
              let plain (algo : Registry.t) =
                let s, seconds = time (fun () -> algo.run g machine) in
                {
                  workload = name;
                  ccr;
                  procs = p;
                  algorithm = algo.name;
                  makespan = Schedule.makespan s;
                  copies = v;
                  seconds;
                }
              in
              dsh_cell :: cpfd_cell
              :: List.map plain [ Registry.flb; Registry.mcp; Registry.etf ])
            procs)
        ccrs)
    (structures ~tasks)

let render cells =
  let buf = Buffer.create 1024 in
  let keys =
    List.sort_uniq compare (List.map (fun c -> (c.workload, c.ccr, c.procs)) cells)
  in
  let table =
    Table.create
      ~header:
        [ "workload"; "CCR"; "P"; "algorithm"; "makespan"; "copies"; "time [ms]" ]
  in
  List.iter
    (fun (w, ccr, p) ->
      List.iter
        (fun c ->
          if c.workload = w && c.ccr = ccr && c.procs = p then
            Table.add_row table
              [
                w;
                Printf.sprintf "%g" ccr;
                string_of_int p;
                c.algorithm;
                Printf.sprintf "%.1f" c.makespan;
                string_of_int c.copies;
                Printf.sprintf "%.2f" (c.seconds *. 1000.0);
              ])
        cells;
      Table.add_separator table)
    keys;
  Buffer.add_string buf (Table.render table);
  Buffer.contents buf
