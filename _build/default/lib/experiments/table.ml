type row = Cells of string list | Separator

type t = { header : string list; mutable rows : row list }

let create ~header = { header; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.header :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let cols = List.length t.header in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row c)))
      0 all_cell_rows
  in
  let widths = List.init cols width in
  let buf = Buffer.create 512 in
  let emit_cells cells =
    List.iteri
      (fun c cell ->
        Buffer.add_string buf cell;
        if c < cols - 1 then
          Buffer.add_string buf
            (String.make (List.nth widths c - String.length cell + 2) ' '))
      cells;
    Buffer.add_char buf '\n'
  in
  let separator () =
    emit_cells (List.map (fun w -> String.make w '-') widths)
  in
  emit_cells t.header;
  separator ();
  List.iter (function Cells c -> emit_cells c | Separator -> separator ()) rows;
  Buffer.contents buf

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
