(** Aligned plain-text tables for experiment output. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit

val render : t -> string
(** Columns padded to their widest cell, two spaces between columns. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point rendering, default 2 decimals. *)
