(** Extension experiment E9: grain packing before scheduling.

    The paper's reference [4] argues for raising task granularity before
    list scheduling. This experiment schedules chain-rich graphs at fine
    grain and after {!Flb_taskgraph.Coarsen.merge_chains} with several
    grain caps, reporting FLB's makespan (on the original time base —
    the coarse schedule is a legal schedule of the fine graph since
    merged chains run contiguously) and its scheduling time. *)

type cell = {
  workload : string;
  ccr : float;
  max_grain : float;  (** [infinity] = unlimited merging *)
  coarse_tasks : int;
  makespan : float;
  sched_seconds : float;
}

val run : ?procs:int -> ?ccrs:float list -> ?grains:float list -> unit -> cell list
(** Defaults: parallel chains and LU at about 2000 tasks; P = 8;
    CCR in {0.2, 5.0}; grain caps {1 (no merging), 4, 16, unlimited}. *)

val render : cell list -> string
