open! Flb_platform

type cell = {
  workload : string;
  ccr : float;
  machine_name : string;
  flb_makespan : float;
  etf_makespan : float;
  mcp_makespan : float;
  suboptimal_fraction : float;
  max_start_ratio : float;
}

let run ?(suite = Workload_suite.fig4_suite ()) ?(ccrs = Workload_suite.paper_ccrs)
    () =
  let machines =
    [ ("clique-16", Machine.clique ~num_procs:16); ("mesh-4x4", Machine.mesh ~rows:4 ~cols:4) ]
  in
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun ccr ->
          let g = Workload_suite.instance workload ~ccr ~seed:1 in
          List.map
            (fun (machine_name, machine) ->
              let flb_sched, report = Flb_core.Flb_check.measure g machine in
              {
                workload = workload.Workload_suite.name;
                ccr;
                machine_name;
                flb_makespan = Schedule.makespan flb_sched;
                etf_makespan = Flb_schedulers.Etf.schedule_length g machine;
                mcp_makespan = Flb_schedulers.Mcp.schedule_length g machine;
                suboptimal_fraction =
                  float_of_int report.Flb_core.Flb_check.suboptimal_steps
                  /. float_of_int (max 1 report.Flb_core.Flb_check.iterations);
                max_start_ratio = report.Flb_core.Flb_check.max_ratio;
              })
            machines)
        ccrs)
    suite

let render cells =
  let table =
    Table.create
      ~header:
        [
          "workload"; "CCR"; "machine"; "FLB"; "ETF"; "MCP";
          "FLB/ETF"; "subopt steps"; "worst ratio";
        ]
  in
  List.iter
    (fun c ->
      Table.add_row table
        [
          c.workload;
          Printf.sprintf "%g" c.ccr;
          c.machine_name;
          Printf.sprintf "%.1f" c.flb_makespan;
          Printf.sprintf "%.1f" c.etf_makespan;
          Printf.sprintf "%.1f" c.mcp_makespan;
          Printf.sprintf "%.2f" (c.flb_makespan /. c.etf_makespan);
          Printf.sprintf "%.1f%%" (100.0 *. c.suboptimal_fraction);
          Printf.sprintf "%.2f" c.max_start_ratio;
        ])
    cells;
  "FLB on uniform vs non-uniform machines (16 processors)\n" ^ Table.render table
