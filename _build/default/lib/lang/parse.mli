(** Textual form of {!Program} fragments.

    S-expression syntax, [';'] comments to end of line:

    {v
    program  ::= (task NAME? COST)
               | (seq [:comm COST] program+)
               | (par program+)
    v}

    Example:

    {v
    ; a 3-way map over an expensive load, then a cheap join
    (seq :comm 2.5
      (task load 4)
      (par (task 1) (task 1) (seq (task 1) (task 2)))
      (task join 0.5))
    v} *)

exception Parse_error of { position : int; message : string }
(** [position] is a 0-based character offset into the input. *)

val program_of_string : string -> Program.t
(** @raise Parse_error on malformed input. *)

val graph_of_string : string -> Flb_taskgraph.Taskgraph.t
(** [Program.compile] of {!program_of_string}. *)

val load : path:string -> Program.t

val to_string : Program.t -> string
(** Pretty-prints a program back into the textual form; parsing the
    result yields a program that compiles to the same graph
    (round-trip property in the test suite). Labels are preserved when
    they contain no whitespace or parentheses. *)
