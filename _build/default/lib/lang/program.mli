open! Flb_taskgraph

(** Structured parallel programs, compiled to task graphs.

    FLB is a {e compile-time} scheduler: its input is the task graph a
    compiler extracts from a program. This module is that missing front
    half in miniature — an algebra of series/parallel program fragments
    that compiles to {!Taskgraph.t}, so users can write workloads as
    programs instead of wiring edges by hand. The textual form is read
    by {!Parse}.

    Composition semantics:
    - [task ~cost] is a single task;
    - [par [a; b; ...]] runs fragments concurrently (no new edges);
    - [seq ~comm [a; b; ...]] runs fragments in stages: every exit of
      stage [i] sends a message of cost [comm] to every entry of stage
      [i+1];
    - [pipeline ~comm n f] is [seq] of [f 0 .. f (n-1)];
    - [replicate n f] is [par] of [f 0 .. f (n-1)].

    Series-parallel programs cannot express every DAG (no butterflies),
    but they cover the fork/join-structured programs the paper's
    compilers targeted. *)

type t

val task : ?label:string -> cost:float -> unit -> t
(** @raise Invalid_argument on a negative or non-finite cost. *)

val seq : ?comm:float -> t list -> t
(** [comm] is the cost of each inter-stage message (default 1.0).
    @raise Invalid_argument on an empty list or bad [comm]. *)

val par : t list -> t
(** @raise Invalid_argument on an empty list. *)

val pipeline : ?comm:float -> int -> (int -> t) -> t

val replicate : int -> (int -> t) -> t

val num_tasks : t -> int

val compile : t -> Taskgraph.t
(** Tasks are numbered in depth-first definition order. *)

val labels : t -> (Taskgraph.task * string) list
(** Labels of labelled tasks under the same numbering as {!compile}. *)

(** One-level structural view, for printers and analyses ({!Parse}
    uses it to render programs back to text). *)
type view =
  | V_task of string option * float
  | V_seq of float * t list
  | V_par of t list

val view : t -> view
