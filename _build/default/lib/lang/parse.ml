exception Parse_error of { position : int; message : string }

let fail position fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { position; message })) fmt

type token = Lparen of int | Rparen of int | Atom of int * string

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ';' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then begin
      tokens := Lparen !i :: !tokens;
      incr i
    end
    else if c = ')' then begin
      tokens := Rparen !i :: !tokens;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let start = !i in
      while
        !i < n
        &&
        let c = text.[!i] in
        c <> '(' && c <> ')' && c <> ';' && c <> ' ' && c <> '\t' && c <> '\n'
        && c <> '\r'
      do
        incr i
      done;
      tokens := Atom (start, String.sub text start (!i - start)) :: !tokens
    end
  done;
  List.rev !tokens

(* minimal s-expression layer *)
type sexp = List_ of int * sexp list | Atom_ of int * string

let parse_sexp tokens =
  let rec one = function
    | [] -> fail max_int "unexpected end of input"
    | Atom (pos, a) :: rest -> (Atom_ (pos, a), rest)
    | Lparen pos :: rest ->
      let rec items acc rest =
        match rest with
        | Rparen _ :: rest -> (List_ (pos, List.rev acc), rest)
        | [] -> fail pos "unclosed parenthesis"
        | _ ->
          let item, rest = one rest in
          items (item :: acc) rest
      in
      items [] rest
    | Rparen pos :: _ -> fail pos "unexpected ')'"
  in
  let sexp, rest = one tokens in
  (match rest with
  | [] -> ()
  | Atom (pos, _) :: _ | Lparen pos :: _ | Rparen pos :: _ ->
    fail pos "trailing input after the program");
  sexp

let float_atom pos s what =
  match float_of_string_opt s with
  | Some f when Float.is_finite f && f >= 0.0 -> f
  | _ -> fail pos "bad %s %S" what s

let rec program_of_sexp = function
  | Atom_ (pos, a) -> fail pos "expected a form, got atom %S" a
  | List_ (pos, Atom_ (_, "task") :: rest) -> begin
    match rest with
    | [ Atom_ (cpos, cost) ] ->
      Program.task ~cost:(float_atom cpos cost "task cost") ()
    | [ Atom_ (_, name); Atom_ (cpos, cost) ] ->
      Program.task ~label:name ~cost:(float_atom cpos cost "task cost") ()
    | _ -> fail pos "expected (task NAME? COST)"
  end
  | List_ (pos, Atom_ (_, "seq") :: rest) -> begin
    let comm, rest =
      match rest with
      | Atom_ (_, ":comm") :: Atom_ (cpos, c) :: rest ->
        (Some (float_atom cpos c "seq :comm cost"), rest)
      | Atom_ (cpos, ":comm") :: _ -> fail cpos ":comm needs a cost"
      | rest -> (None, rest)
    in
    if rest = [] then fail pos "seq needs at least one stage";
    Program.seq ?comm (List.map program_of_sexp rest)
  end
  | List_ (pos, Atom_ (_, "par") :: rest) ->
    if rest = [] then fail pos "par needs at least one fragment";
    Program.par (List.map program_of_sexp rest)
  | List_ (pos, Atom_ (_, head) :: _) -> fail pos "unknown form %S" head
  | List_ (pos, _) -> fail pos "expected (task ...), (seq ...) or (par ...)"

let program_of_string text = program_of_sexp (parse_sexp (tokenize text))

let graph_of_string text = Program.compile (program_of_string text)

let safe_label l =
  l <> ""
  && String.for_all
       (fun c -> not (c = '(' || c = ')' || c = ';' || c = ' ' || c = '\t' || c = '\n'))
       l

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else Printf.sprintf "%.17g" f

let to_string program =
  let buf = Buffer.create 256 in
  let rec emit indent p =
    let pad = String.make indent ' ' in
    match Program.view p with
    | Program.V_task (label, cost) -> begin
      match label with
      | Some l when safe_label l ->
        Buffer.add_string buf (Printf.sprintf "%s(task %s %s)" pad l (number cost))
      | Some _ | None ->
        Buffer.add_string buf (Printf.sprintf "%s(task %s)" pad (number cost))
    end
    | Program.V_seq (comm, stages) ->
      Buffer.add_string buf (Printf.sprintf "%s(seq :comm %s\n" pad (number comm));
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf '\n';
          emit (indent + 2) s)
        stages;
      Buffer.add_char buf ')'
    | Program.V_par fragments ->
      Buffer.add_string buf (Printf.sprintf "%s(par\n" pad);
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf '\n';
          emit (indent + 2) s)
        fragments;
      Buffer.add_char buf ')'
  in
  emit 0 program;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> program_of_string (In_channel.input_all ic))
