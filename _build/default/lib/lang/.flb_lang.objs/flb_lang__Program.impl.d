lib/lang/program.ml: Flb_taskgraph Float List Printf Taskgraph
