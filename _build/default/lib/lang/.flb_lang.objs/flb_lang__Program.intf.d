lib/lang/program.mli: Flb_taskgraph Taskgraph
