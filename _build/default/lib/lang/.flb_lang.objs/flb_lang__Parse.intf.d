lib/lang/parse.mli: Flb_taskgraph Program
