lib/lang/parse.ml: Buffer Float Fun In_channel List Printf Program String
