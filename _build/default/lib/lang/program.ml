open! Flb_taskgraph

type t =
  | Task of { label : string option; cost : float }
  | Seq of { comm : float; stages : t list }
  | Par of t list

let check_cost what c =
  if (not (Float.is_finite c)) || c < 0.0 then
    invalid_arg (Printf.sprintf "Program.%s: cost must be finite and non-negative" what)

let task ?label ~cost () =
  check_cost "task" cost;
  Task { label; cost }

let seq ?(comm = 1.0) stages =
  check_cost "seq" comm;
  if stages = [] then invalid_arg "Program.seq: empty stage list";
  Seq { comm; stages }

let par fragments =
  if fragments = [] then invalid_arg "Program.par: empty fragment list";
  Par fragments

let pipeline ?comm n f =
  if n < 1 then invalid_arg "Program.pipeline: need at least one stage";
  seq ?comm (List.init n f)

let replicate n f =
  if n < 1 then invalid_arg "Program.replicate: need at least one copy";
  par (List.init n f)

let rec num_tasks = function
  | Task _ -> 1
  | Seq { stages; _ } -> List.fold_left (fun acc s -> acc + num_tasks s) 0 stages
  | Par fragments -> List.fold_left (fun acc s -> acc + num_tasks s) 0 fragments

(* Elaboration returns the fragment's entry and exit task ids; [seq]
   connects consecutive stages by a complete bipartite edge set. *)
let compile_into b program =
  let labels = ref [] in
  let rec emit = function
    | Task { label; cost } ->
      let id = Taskgraph.Builder.add_task b ~comp:cost in
      (match label with Some l -> labels := (id, l) :: !labels | None -> ());
      ([ id ], [ id ])
    | Par fragments ->
      let parts = List.map emit fragments in
      (List.concat_map fst parts, List.concat_map snd parts)
    | Seq { comm; stages } ->
      let parts = List.map emit stages in
      let rec link = function
        | (_, exits) :: ((entries, _) :: _ as rest) ->
          List.iter
            (fun src ->
              List.iter (fun dst -> Taskgraph.Builder.add_edge b ~src ~dst ~comm) entries)
            exits;
          link rest
        | [ _ ] | [] -> ()
      in
      link parts;
      (fst (List.hd parts), snd (List.nth parts (List.length parts - 1)))
  in
  let entries_exits = emit program in
  (entries_exits, List.rev !labels)

let compile program =
  let b = Taskgraph.Builder.create ~expected_tasks:(num_tasks program) () in
  ignore (compile_into b program);
  Taskgraph.Builder.build b

type view =
  | V_task of string option * float
  | V_seq of float * t list
  | V_par of t list

let view = function
  | Task { label; cost } -> V_task (label, cost)
  | Seq { comm; stages } -> V_seq (comm, stages)
  | Par fragments -> V_par fragments

let labels program =
  let b = Taskgraph.Builder.create ~expected_tasks:(num_tasks program) () in
  let _, labels = compile_into b program in
  labels
