(** Growable arrays.

    OCaml 5.1 predates [Dynarray] in the standard library, and the
    schedulers in this repository need amortized O(1) push with in-place
    access (per-processor task lists, adjacency builders, event buffers).
    This is the conventional doubling vector. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty vector. [capacity] pre-sizes the backing store. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit
(** Logical clear; does not shrink the backing store. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val map : ('a -> 'b) -> 'a t -> 'b t

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_array : 'a array -> 'a t

val of_list : 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
