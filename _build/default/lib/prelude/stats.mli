(** Descriptive statistics for experiment reporting.

    The evaluation averages each experiment cell over several seeded
    instances (the paper uses 5 random-weight graphs per cell); these
    helpers compute the summaries printed in EXPERIMENTS.md. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for singleton input. *)

val stddev : float array -> float

val coefficient_of_variation : float array -> float
(** [stddev / mean]. @raise Invalid_argument if the mean is zero. *)

val min : float array -> float

val max : float array -> float

val median : float array -> float

val quantile : float array -> q:float -> float
(** Linear-interpolation quantile, [q] in [\[0, 1\]]. *)

val geometric_mean : float array -> float
(** @raise Invalid_argument if any value is non-positive. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Streaming mean/variance (Welford's algorithm), used where samples are
    produced one at a time and the array would be wastefully large. *)
module Accumulator : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
