(* Doubling vector. The backing array is allocated lazily on the first push
   so we never need a dummy element of type ['a]; dead slots past [len] keep
   whatever value they held, which is safe because they are unreachable
   through the API (they do retain references until overwritten, which is
   acceptable for the short-lived buffers used here). *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  mutable capacity_hint : int;
}

let create ?(capacity = 8) () =
  { data = [||]; len = 0; capacity_hint = max 1 capacity }

let make n x = { data = Array.make (max n 1) x; len = n; capacity_hint = max n 1 }

let length v = v.len

let is_empty v = v.len = 0

let check_bounds v i op =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0, %d)" op i v.len)

let get v i =
  check_bounds v i "get";
  v.data.(i)

let set v i x =
  check_bounds v i "set";
  v.data.(i) <- x

let grow v x =
  if Array.length v.data = 0 then v.data <- Array.make v.capacity_hint x
  else begin
    let data = Array.make (2 * Array.length v.data) x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let map f v =
  if v.len = 0 then create ()
  else begin
    let out = make v.len (f v.data.(0)) in
    for i = 1 to v.len - 1 do
      out.data.(i) <- f v.data.(i)
    done;
    out
  end

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let to_list v = Array.to_list (to_array v)

let of_array a =
  { data = Array.copy a; len = Array.length a; capacity_hint = max 1 (Array.length a) }

let of_list l = of_array (Array.of_list l)

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
