lib/prelude/rng.mli:
