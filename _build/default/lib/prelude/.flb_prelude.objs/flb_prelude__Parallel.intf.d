lib/prelude/parallel.mli:
