lib/prelude/vec.ml: Array Printf
