lib/prelude/bitset.mli:
