lib/prelude/vec.mli:
