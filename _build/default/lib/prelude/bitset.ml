(* Bitset on an int array; 62 usable bits per word would complicate index
   math for no benefit, so we use 63-bit OCaml ints but only the low 62 bits
   ... in fact plain [lsl]/[lsr] on OCaml ints gives us 63 bits per word,
   and that is what we use. *)

let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

type t = { words : int array; capacity : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; capacity = n }

let capacity t = t.capacity

let check t i op =
  if i < 0 || i >= t.capacity then
    invalid_arg
      (Printf.sprintf "Bitset.%s: %d outside universe [0, %d)" op i t.capacity)

let mem t i =
  check t i "mem";
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i "add";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i "remove";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount =
  (* Classic SWAR population count specialized to 63-bit words. *)
  let m1 = 0x5555555555555555 land max_int in
  let m2 = 0x3333333333333333 land max_int in
  let m4 = 0x0F0F0F0F0F0F0F0F land max_int in
  fun x ->
    let x = x - ((x lsr 1) land m1) in
    let x = (x land m2) + ((x lsr 2) land m2) in
    let x = (x + (x lsr 4)) land m4 in
    (x * 0x0101010101010101) lsr 56 land 0xFF

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let check_same_capacity a b op =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch" op)

let union_into ~dst ~src =
  check_same_capacity dst src "union_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_cardinal a b =
  check_same_capacity a b "inter_cardinal";
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let bit = !word land - !word in
      (* index of the lowest set bit *)
      let i = (w * bits_per_word) + popcount (bit - 1) in
      f i;
      word := !word land lnot bit
    done
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let equal a b = a.capacity = b.capacity && a.words = b.words
