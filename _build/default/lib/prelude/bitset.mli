(** Fixed-capacity bitsets over the universe [0 .. capacity-1].

    Used for reachability and transitive-closure computations on task
    graphs, where the word-parallel [union_into] makes the closure
    O(V * E / word_size). *)

type t

val create : int -> t
(** [create n] is the empty set over universe size [n].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val union_into : dst:t -> src:t -> unit
(** [union_into ~dst ~src] sets [dst := dst ∪ src].
    @raise Invalid_argument on capacity mismatch. *)

val inter_cardinal : t -> t -> int
(** Size of the intersection, without materializing it. *)

val copy : t -> t

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Visits members in increasing order. *)

val to_list : t -> int list

val equal : t -> t -> bool
