(** Deterministic, splittable pseudo-random number generation.

    All experiments in this repository are seeded so that every figure and
    table regenerates bit-identically. The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state advanced by a Weyl
    increment and finalized with a variant of the MurmurHash3 mixer. It is
    fast, has a guaranteed period of 2^64, and supports {!split} for
    creating statistically independent streams, which lets independent
    experiment cells draw from independent generators regardless of
    evaluation order. *)

type t
(** A mutable generator. Never shared between experiment cells; use
    {!split} to derive per-cell generators. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds give
    equal streams. *)

val of_int64 : int64 -> t
(** [of_int64 s] builds a generator from a full 64-bit seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [\[0, bound)]. Uses rejection sampling, so
    the distribution is exactly uniform. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in g ~lo ~hi] is uniform on the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform on [\[0, bound)]. 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
(** [uniform g ~lo ~hi] is uniform on [\[lo, hi)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (CoV = 1). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty arrays. *)
