let recommended_domains () =
  min 8 (max 1 (Domain.recommended_domain_count () - 1))

let map ?(domains = 1) f xs =
  if domains <= 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else begin
          match f inputs.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
            (* first failure wins; the others drain quickly *)
            ignore (Atomic.compare_and_set failure None (Some e))
        end
      done
    in
    let spawned =
      List.init (min domains n - 1 |> max 0) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function Some y -> y | None -> assert false (* all indices visited *))
         results)
  end
