(** Multicore helpers (OCaml 5 domains).

    The evaluation grids are embarrassingly parallel across cells —
    every cell builds its own graphs and schedulers from a deterministic
    seed — so the experiment harness can fan them out over domains. The
    output is position-stable: results are identical to the sequential
    run, only faster. *)

val recommended_domains : unit -> int
(** [max 1 (available cores - 1)], capped at 8 (the experiment cells are
    memory-bandwidth-hungry; more domains rarely help). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed by [domains] domains
    pulling indices from a shared counter. [domains <= 1] (the default)
    runs sequentially. [f] must be safe to run concurrently with itself
    on distinct inputs (no shared mutable state); every [f] used by the
    experiment harness is. Exceptions from [f] are re-raised. *)
