(* SplitMix64: state advances by the golden-gamma Weyl constant; outputs are
   the state passed through a 64-bit finalizer. See Steele, Lea & Flood,
   "Fast splittable pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let of_int64 s = { state = s }

let create ~seed = of_int64 (Int64.of_int seed)

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = of_int64 (bits64 g)

(* Non-negative 62-bit int from the top bits (avoids sign issues on 63-bit
   OCaml ints). *)
let bits g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the largest multiple of [bound] below 2^62. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = bits g in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in g ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 random bits scaled to [0, 1), as in the standard double generation
     recipe. *)
  let bits53 = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int bits53 /. 9007199254740992.0 *. bound

let uniform g ~lo ~hi = lo +. float g (hi -. lo)

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g ~p = float g 1.0 < p

let exponential g ~mean =
  let u = float g 1.0 in
  (* 1 - u is in (0, 1], so the log is finite. *)
  -.mean *. log (1.0 -. u)

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))
