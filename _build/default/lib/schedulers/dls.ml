open! Flb_taskgraph
open! Flb_platform

let run g machine =
  let slevel = Levels.blevel_comp_only g in
  let sched = Schedule.create g machine in
  let ready = ref (Taskgraph.entry_tasks g) in
  for _ = 1 to Taskgraph.num_tasks g do
    let best = ref None in
    List.iter
      (fun t ->
        for p = 0 to Schedule.num_procs sched - 1 do
          let est = Schedule.est sched t ~proc:p in
          let dl = slevel.(t) -. est in
          let better =
            match !best with
            | None -> true
            | Some (bt, _, _, best_dl) -> dl > best_dl || (dl = best_dl && t < bt)
          in
          if better then best := Some (t, p, est, dl)
        done)
      !ready;
    match !best with
    | None -> assert false (* a DAG always has a ready task while incomplete *)
    | Some (t, proc, est, _) ->
      Schedule.assign sched t ~proc ~start:est;
      ready := List.filter (fun u -> u <> t) !ready;
      Array.iter
        (fun (succ, _) ->
          if Schedule.is_ready sched succ then ready := succ :: !ready)
        (Taskgraph.succs g t)
  done;
  sched

let schedule_length g machine = Schedule.makespan (run g machine)
