open! Flb_taskgraph
open! Flb_platform

(** DSC-LLB — the multi-step method the paper compares against:
    {!Dsc} clustering followed by {!Llb} cluster mapping. *)

val run : ?priority:Llb.priority -> Taskgraph.t -> Machine.t -> Schedule.t

val schedule_length : ?priority:Llb.priority -> Taskgraph.t -> Machine.t -> float
