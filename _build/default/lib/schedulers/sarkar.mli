open! Flb_taskgraph

(** Sarkar's internalization clustering (Sarkar 1989, the paper's
    reference [9] — the other classic first step of multi-step
    scheduling, alongside DSC).

    Edges are examined in decreasing communication cost; an edge is
    "internalized" (its two clusters merged, the message zeroed) iff the
    merge does not increase the estimated parallel time of the clustered
    graph on unbounded processors. O(E (V + E)) — markedly slower than
    DSC, which is why DSC won historically; included for the multi-step
    comparison. *)

val cluster : Taskgraph.t -> Dsc.clustering
(** Result is interchangeable with {!Dsc.cluster}'s (same invariants;
    passes {!Dsc.validate}), so {!Llb} can map it. *)

val parallel_time_of_grouping :
  Taskgraph.t -> cluster_of:(Taskgraph.task -> int) -> float
(** Estimated makespan of a clustered graph on one processor per
    cluster: tasks run in topological order, intra-cluster messages are
    free. Exposed for tests. *)
