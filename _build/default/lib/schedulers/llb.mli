open! Flb_taskgraph
open! Flb_platform

(** LLB — List-based Load Balancing (Rădulescu, van Gemund & Lin, 1999):
    the second step of DSC-LLB, mapping a clustering onto P physical
    processors while ordering tasks.

    Iteratively: pick the processor becoming idle the earliest; its
    candidates are (a) a ready task whose cluster is already mapped to
    it and (b) a ready task of a still-unmapped cluster (scheduling one
    maps its whole cluster). Per candidate class the task with the
    priority bottom level is taken, and of the two candidates the one
    starting earlier is scheduled. When the chosen processor has no
    candidates (every ready task's cluster is mapped elsewhere), the
    best ready task is scheduled on its own cluster's processor so the
    algorithm always progresses.

    The FLB paper's §3.3 describes the candidate priority as the
    {e least} bottom level, but that choice reproduces neither the
    magnitudes the paper reports for DSC-LLB (≤20% over MCP typically,
    ≤42% worst-case) nor the conventions of the LLB paper's lineage;
    the greatest-bottom-level-first rule does (see the ablation bench
    and EXPERIMENTS.md), so it is the default and the literal reading
    remains available for the ablation study. *)

type priority =
  | Least_blevel  (** the FLB paper's literal phrasing *)
  | Greatest_blevel  (** conventional list-scheduling priority (default) *)

val run :
  ?priority:priority -> Taskgraph.t -> Machine.t -> Dsc.clustering -> Schedule.t
(** Maps the clustering onto the machine. [priority] defaults to
    [Greatest_blevel]. *)
