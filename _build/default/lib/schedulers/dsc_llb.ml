open! Flb_taskgraph
open! Flb_platform

let run ?priority g machine = Llb.run ?priority g machine (Dsc.cluster g)

let schedule_length ?priority g machine = Schedule.makespan (run ?priority g machine)
