open! Flb_taskgraph
open! Flb_platform
open! Flb_prelude

let place_in_topo_order g machine ~proc_of =
  let sched = Schedule.create g machine in
  Array.iteri
    (fun i t ->
      let proc = proc_of i t in
      Schedule.assign sched t ~proc ~start:(Schedule.est sched t ~proc))
    (Topo.order g);
  sched

let serial g machine = place_in_topo_order g machine ~proc_of:(fun _ _ -> 0)

let round_robin g machine =
  let p = Machine.num_procs machine in
  place_in_topo_order g machine ~proc_of:(fun i _ -> i mod p)

let random_placement ~seed g machine =
  let rng = Rng.create ~seed in
  let p = Machine.num_procs machine in
  place_in_topo_order g machine ~proc_of:(fun _ _ -> Rng.int rng p)
