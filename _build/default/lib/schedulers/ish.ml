open! Flb_taskgraph
open! Flb_platform

let run g machine =
  let slevel = Levels.blevel_comp_only g in
  List_common.run
    ~priority:(fun t -> (-.slevel.(t), float_of_int t))
    ~select_proc:List_common.earliest_proc_insertion g machine

let schedule_length g machine = Schedule.makespan (run g machine)
