lib/schedulers/llb.ml: Array Dsc Flb_heap Flb_platform Flb_taskgraph Float Levels List Machine Schedule Stdlib Taskgraph
