lib/schedulers/dls.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
