lib/schedulers/ish.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
