lib/schedulers/naive.ml: Array Flb_platform Flb_prelude Flb_taskgraph Machine Rng Schedule Topo
