lib/schedulers/dsc.mli: Flb_taskgraph Taskgraph
