lib/schedulers/sarkar.mli: Dsc Flb_taskgraph Taskgraph
