lib/schedulers/fcp.ml: Array Flb_heap Flb_platform Flb_taskgraph Float Levels List Machine Schedule Stdlib Taskgraph
