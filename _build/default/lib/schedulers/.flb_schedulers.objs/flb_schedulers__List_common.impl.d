lib/schedulers/list_common.ml: Array Flb_heap Flb_platform Flb_taskgraph Float List Schedule Stdlib Taskgraph
