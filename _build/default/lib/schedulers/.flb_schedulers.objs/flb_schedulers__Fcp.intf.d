lib/schedulers/fcp.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
