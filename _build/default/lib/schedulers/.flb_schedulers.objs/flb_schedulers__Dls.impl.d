lib/schedulers/dls.ml: Array Flb_platform Flb_taskgraph Levels List Schedule Taskgraph
