lib/schedulers/mcp.mli: Flb_platform Flb_prelude Flb_taskgraph Machine Schedule Taskgraph
