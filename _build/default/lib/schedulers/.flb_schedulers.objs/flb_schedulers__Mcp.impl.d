lib/schedulers/mcp.ml: Array Flb_platform Flb_prelude Flb_taskgraph Fun Levels List List_common Rng Schedule Taskgraph Topo
