lib/schedulers/dsc.ml: Array Flb_heap Flb_prelude Flb_taskgraph Float Levels List Printf Stdlib Taskgraph
