lib/schedulers/llb.mli: Dsc Flb_platform Flb_taskgraph Machine Schedule Taskgraph
