lib/schedulers/list_common.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
