lib/schedulers/hlfet.ml: Array Flb_platform Flb_taskgraph Levels List_common Schedule
