lib/schedulers/ish.ml: Array Flb_platform Flb_taskgraph Levels List_common Schedule
