lib/schedulers/hlfet.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
