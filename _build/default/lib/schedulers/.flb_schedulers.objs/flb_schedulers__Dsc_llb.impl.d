lib/schedulers/dsc_llb.ml: Dsc Flb_platform Flb_taskgraph Llb Schedule
