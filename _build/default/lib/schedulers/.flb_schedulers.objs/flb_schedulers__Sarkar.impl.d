lib/schedulers/sarkar.ml: Array Dsc Flb_prelude Flb_taskgraph Float Fun Hashtbl List Option Taskgraph Topo
