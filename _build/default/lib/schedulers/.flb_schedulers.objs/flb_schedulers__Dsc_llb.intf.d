lib/schedulers/dsc_llb.mli: Flb_platform Flb_taskgraph Llb Machine Schedule Taskgraph
