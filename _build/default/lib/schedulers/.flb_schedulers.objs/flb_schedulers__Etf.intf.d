lib/schedulers/etf.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
