lib/schedulers/naive.mli: Flb_platform Flb_taskgraph Machine Schedule Taskgraph
