open! Flb_taskgraph
open! Flb_platform

let run g machine =
  let sched = Schedule.create g machine in
  let blevel = Levels.blevel g in
  let n = Taskgraph.num_tasks g in
  (* The ready set as an unordered bag; ETF rescans it wholesale anyway. *)
  let ready = ref (Taskgraph.entry_tasks g) in
  for _ = 1 to n do
    let best = ref None in
    List.iter
      (fun t ->
        let proc, est = Schedule.min_est_over_procs sched t in
        let better =
          match !best with
          | None -> true
          | Some (bt, _, best_est) ->
            est < best_est
            || (est = best_est
               && (blevel.(t) > blevel.(bt) || (blevel.(t) = blevel.(bt) && t < bt)))
        in
        if better then best := Some (t, proc, est))
      !ready;
    match !best with
    | None -> assert false (* a DAG always has a ready task while incomplete *)
    | Some (t, proc, est) ->
      Schedule.assign sched t ~proc ~start:est;
      ready := List.filter (fun u -> u <> t) !ready;
      Array.iter
        (fun (succ, _) ->
          if Schedule.is_ready sched succ then ready := succ :: !ready)
        (Taskgraph.succs g t)
  done;
  sched

let schedule_length g machine = Schedule.makespan (run g machine)
