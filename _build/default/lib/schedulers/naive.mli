open! Flb_taskgraph
open! Flb_platform

(** Trivial baselines for tests and sanity bounds. *)

val serial : Taskgraph.t -> Machine.t -> Schedule.t
(** Everything on processor 0 in topological order. Its makespan is
    exactly the sequential time (communication is all local), which
    upper-bounds every sensible scheduler and pins the speedup
    denominator in tests. *)

val round_robin : Taskgraph.t -> Machine.t -> Schedule.t
(** Topological order, processor [i mod P], earliest feasible start.
    A deliberately communication-oblivious baseline. *)

val random_placement : seed:int -> Taskgraph.t -> Machine.t -> Schedule.t
(** Topological order, uniformly random processor per task. *)
