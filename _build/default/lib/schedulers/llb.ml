open! Flb_taskgraph
open! Flb_platform
module Indexed_heap = Flb_heap.Indexed_heap

type priority = Least_blevel | Greatest_blevel

let run ?(priority = Greatest_blevel) g machine clustering =
  let n = Taskgraph.num_tasks g in
  let p = Machine.num_procs machine in
  let blevel = Levels.blevel g in
  let key t =
    match priority with
    | Least_blevel -> (blevel.(t), float_of_int t)
    | Greatest_blevel -> (-.blevel.(t), float_of_int t)
  in
  let sched = Schedule.create g machine in
  let cluster_proc = Array.make (Dsc.num_clusters clustering) (-1) in
  (* Ready tasks split by where they may run: one queue per processor for
     tasks of clusters mapped there, one queue for tasks of unmapped
     clusters. *)
  let mapped_ready =
    Array.init p (fun _ -> Indexed_heap.create ~universe:n ~compare:Stdlib.compare)
  in
  let unmapped_ready = Indexed_heap.create ~universe:n ~compare:Stdlib.compare in
  let procs = Indexed_heap.create ~universe:p ~compare:Float.compare in
  for pr = 0 to p - 1 do
    Indexed_heap.add procs ~elt:pr ~key:0.0
  done;
  let enqueue t =
    let c = clustering.Dsc.cluster_of.(t) in
    if cluster_proc.(c) >= 0 then
      Indexed_heap.add mapped_ready.(cluster_proc.(c)) ~elt:t ~key:(key t)
    else Indexed_heap.add unmapped_ready ~elt:t ~key:(key t)
  in
  List.iter enqueue (Taskgraph.entry_tasks g);
  let map_cluster c pr =
    cluster_proc.(c) <- pr;
    (* Migrate the cluster's currently-ready tasks to the processor's
       queue. *)
    List.iter
      (fun t ->
        if Indexed_heap.mem unmapped_ready t then begin
          Indexed_heap.remove unmapped_ready t;
          Indexed_heap.add mapped_ready.(pr) ~elt:t ~key:(key t)
        end)
      clustering.Dsc.clusters.(c)
  in
  let commit t pr =
    let c = clustering.Dsc.cluster_of.(t) in
    if cluster_proc.(c) < 0 then map_cluster c pr;
    Indexed_heap.remove mapped_ready.(pr) t;
    (* (a no-op when the task came straight from the unmapped queue) *)
    Indexed_heap.remove unmapped_ready t;
    Schedule.assign sched t ~proc:pr ~start:(Schedule.est sched t ~proc:pr);
    Indexed_heap.update procs ~elt:pr ~key:(Schedule.prt sched pr);
    Array.iter
      (fun (succ, _) -> if Schedule.is_ready sched succ then enqueue succ)
      (Taskgraph.succs g t)
  in
  (* Fallback when the idle-earliest processor has no candidates: take the
     best-priority ready task of any mapped cluster and run it at home. *)
  let fallback () =
    let best = ref None in
    Array.iteri
      (fun pr heap ->
        match Indexed_heap.min_elt heap with
        | Some (t, k) -> begin
          match !best with
          | Some (_, _, bk) when compare bk k <= 0 -> ()
          | _ -> best := Some (t, pr, k)
        end
        | None -> ())
      mapped_ready;
    match !best with
    | Some (t, pr, _) -> commit t pr
    | None -> assert false (* some ready task always exists mid-run *)
  in
  while not (Schedule.is_complete sched) do
    let pr =
      match Indexed_heap.min_elt procs with
      | Some (pr, _) -> pr
      | None -> assert false
    in
    let cand_mapped = Indexed_heap.min_elt mapped_ready.(pr) in
    let cand_unmapped = Indexed_heap.min_elt unmapped_ready in
    match (cand_mapped, cand_unmapped) with
    | None, None -> fallback ()
    | Some (t, _), None | None, Some (t, _) -> commit t pr
    | Some (ta, _), Some (tb, _) ->
      (* The earlier starter wins; the mapped task on a tie (it causes no
         new cluster mapping). *)
      if Schedule.est sched tb ~proc:pr < Schedule.est sched ta ~proc:pr then
        commit tb pr
      else commit ta pr
  done;
  sched
