open! Flb_taskgraph

(** DSC — Dominant Sequence Clustering (Yang & Gerasoulis, 1994), the
    clustering step of the multi-step DSC-LLB method the paper compares
    against.

    Tasks are examined in decreasing [tlevel + blevel] priority (the
    dominant sequence), with top levels maintained incrementally. An
    examined task either merges into the cluster of its dominant
    predecessor — accepted when zeroing that incoming edge does not
    increase the task's start time — or founds its own cluster. Clusters
    are linear task sequences.

    This implementation omits the original's DSRW (dominant-sequence
    reduction warranty) backtracking and the multi-edge zeroing sweep: a
    documented simplification (DESIGN.md §5) that affects constant
    factors of the clustering quality only. Complexity
    O((V + E) log V). *)

type clustering = {
  cluster_of : int array;  (** task -> cluster id, dense in [0, count) *)
  clusters : Taskgraph.task list array;  (** execution order per cluster *)
  tlevel : float array;
      (** start time of each task in the clustered (unbounded-processor)
          schedule *)
}

val cluster : Taskgraph.t -> clustering

val num_clusters : clustering -> int

val parallel_time : Taskgraph.t -> clustering -> float
(** Makespan of the clustered graph on one processor per cluster. *)

val validate : Taskgraph.t -> clustering -> (unit, string list) result
(** Structural checks: every task in exactly one cluster, cluster
    sequences respect the precedence order ([tlevel] non-decreasing
    along each sequence and across edges). *)
