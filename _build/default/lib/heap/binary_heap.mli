(** Array-backed binary min-heaps.

    The generic priority queue used by the event-driven simulator and the
    simpler schedulers. For the queues that need removal or priority
    update of interior elements (FLB's task and processor lists), use
    {!Indexed_heap} instead. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  (** Total order; the heap exposes the minimum element first. *)
end

module Make (E : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val add : t -> E.t -> unit

  val min_elt : t -> E.t option

  val pop : t -> E.t option
  (** Removes and returns the minimum element. *)

  val pop_exn : t -> E.t
  (** @raise Invalid_argument on an empty heap. *)

  val of_array : E.t array -> t
  (** Linear-time heapify. *)

  val drain : t -> E.t list
  (** Pops everything; the result is sorted ascending. *)
end
