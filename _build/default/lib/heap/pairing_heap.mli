(** Persistent pairing min-heaps.

    A purely functional heap with O(1) [merge] and amortized O(log n)
    [pop]. Used as an independent oracle for the imperative heaps in the
    property-test suite, and available to library users who prefer a
    persistent queue. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) : sig
  type t

  val empty : t

  val is_empty : t -> bool

  val singleton : E.t -> t

  val merge : t -> t -> t

  val add : t -> E.t -> t

  val min_elt : t -> E.t option

  val pop : t -> (E.t * t) option
  (** Minimum element and the remaining heap. *)

  val of_list : E.t list -> t

  val to_sorted_list : t -> E.t list

  val length : t -> int
  (** O(n); intended for tests. *)
end
