module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) = struct
  type t = Empty | Node of E.t * t list

  let empty = Empty

  let is_empty = function Empty -> true | Node _ -> false

  let singleton x = Node (x, [])

  let merge a b =
    match (a, b) with
    | Empty, h | h, Empty -> h
    | Node (x, xs), Node (y, ys) ->
      if E.compare x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

  let add h x = merge h (singleton x)

  let min_elt = function Empty -> None | Node (x, _) -> Some x

  (* Two-pass pairing: merge children left-to-right in pairs, then fold the
     pair results right-to-left. This is the variant with the proven
     O(log n) amortized bound. *)
  let rec merge_pairs = function
    | [] -> Empty
    | [ h ] -> h
    | h1 :: h2 :: rest -> merge (merge h1 h2) (merge_pairs rest)

  let pop = function
    | Empty -> None
    | Node (x, children) -> Some (x, merge_pairs children)

  let of_list l = List.fold_left add empty l

  let to_sorted_list h =
    let rec loop acc h =
      match pop h with None -> List.rev acc | Some (x, h') -> loop (x :: acc) h'
    in
    loop [] h

  let rec length = function
    | Empty -> 0
    | Node (_, children) -> 1 + List.fold_left (fun acc c -> acc + length c) 0 children
end
