module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) = struct
  type t = { data : E.t Flb_prelude.Vec.t }

  module Vec = Flb_prelude.Vec

  let create ?(capacity = 16) () = { data = Vec.create ~capacity () }

  let length h = Vec.length h.data

  let is_empty h = Vec.is_empty h.data

  let swap h i j =
    let tmp = Vec.get h.data i in
    Vec.set h.data i (Vec.get h.data j);
    Vec.set h.data j tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if E.compare (Vec.get h.data i) (Vec.get h.data parent) < 0 then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let n = Vec.length h.data in
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < n && E.compare (Vec.get h.data l) (Vec.get h.data !smallest) < 0 then
      smallest := l;
    if r < n && E.compare (Vec.get h.data r) (Vec.get h.data !smallest) < 0 then
      smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let add h x =
    Vec.push h.data x;
    sift_up h (Vec.length h.data - 1)

  let min_elt h = if is_empty h then None else Some (Vec.get h.data 0)

  let pop h =
    match Vec.length h.data with
    | 0 -> None
    | 1 -> Vec.pop h.data
    | n ->
      let top = Vec.get h.data 0 in
      let last = Vec.get h.data (n - 1) in
      ignore (Vec.pop h.data);
      Vec.set h.data 0 last;
      sift_down h 0;
      Some top

  let pop_exn h =
    match pop h with
    | Some x -> x
    | None -> invalid_arg "Binary_heap.pop_exn: empty heap"

  let of_array a =
    let h = { data = Vec.of_array a } in
    for i = (Array.length a / 2) - 1 downto 0 do
      sift_down h i
    done;
    h

  let drain h =
    let rec loop acc =
      match pop h with None -> List.rev acc | Some x -> loop (x :: acc)
    in
    loop []
end
