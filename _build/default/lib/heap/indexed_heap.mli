(** Indexed (addressable) binary min-heaps over integer elements.

    This is the data structure behind every "sorted list" in the FLB
    paper: each element is an integer identifier drawn from a fixed
    universe (a task id or a processor id), and the heap supports, in
    O(log n):

    - inserting an element with a key,
    - removing an arbitrary element by identifier (the paper's
      [RemoveItem]),
    - re-keying an element in place (the paper's [BalanceList]),

    plus O(1) access to the minimum (the paper's [Head]). A position
    table indexed by element identifier makes interior addressing O(1).

    The paper describes its lists as "decreasingly sorted by priority";
    equivalently, the head holds the minimum key, which is what this
    min-heap exposes. *)

type 'k t

val create : universe:int -> compare:('k -> 'k -> int) -> 'k t
(** [create ~universe ~compare] supports elements [0 .. universe-1].
    [compare] orders keys; ties are broken by element id (ascending) so
    iteration order is deterministic. *)

val length : 'k t -> int

val is_empty : 'k t -> bool

val mem : 'k t -> int -> bool

val key : 'k t -> int -> 'k
(** @raise Not_found if the element is not in the heap. *)

val add : 'k t -> elt:int -> key:'k -> unit
(** @raise Invalid_argument if [elt] is already present or out of range. *)

val update : 'k t -> elt:int -> key:'k -> unit
(** Re-keys a present element, or inserts an absent one. *)

val remove : 'k t -> int -> unit
(** Removes the element if present; no-op otherwise. *)

val min_elt : 'k t -> (int * 'k) option
(** The head of the list: element with the smallest key. *)

val pop : 'k t -> (int * 'k) option

val iter : (int -> 'k -> unit) -> 'k t -> unit
(** Heap order, not sorted order. *)

val to_sorted_list : 'k t -> (int * 'k) list
(** Non-destructive; ascending by key. For tests and trace printing. *)
