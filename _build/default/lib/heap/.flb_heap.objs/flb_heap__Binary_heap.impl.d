lib/heap/binary_heap.ml: Array Flb_prelude List
