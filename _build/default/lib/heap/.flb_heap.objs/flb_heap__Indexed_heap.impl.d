lib/heap/indexed_heap.ml: Array Flb_prelude List Printf Stdlib
