open! Flb_taskgraph
open! Flb_platform
module Vec = Flb_prelude.Vec

type copy = { task : Taskgraph.task; proc : int; start : float; finish : float }

type t = {
  graph : Taskgraph.t;
  machine : Machine.t;
  by_task : copy Vec.t array;
  by_proc : copy Vec.t array;
  prt : float array;
}

let create graph machine =
  let n = Taskgraph.num_tasks graph in
  let p = Machine.num_procs machine in
  {
    graph;
    machine;
    by_task = Array.init n (fun _ -> Vec.create ~capacity:1 ());
    by_proc = Array.init p (fun _ -> Vec.create ());
    prt = Array.make p 0.0;
  }

let graph s = s.graph

let num_procs s = Machine.num_procs s.machine

let check_task s t op =
  if t < 0 || t >= Taskgraph.num_tasks s.graph then
    invalid_arg (Printf.sprintf "Dup_schedule.%s: unknown task %d" op t)

let check_proc s p op =
  if p < 0 || p >= num_procs s then
    invalid_arg (Printf.sprintf "Dup_schedule.%s: unknown processor %d" op p)

let copies s t =
  check_task s t "copies";
  Vec.to_list s.by_task.(t)

let has_copy s t =
  check_task s t "has_copy";
  not (Vec.is_empty s.by_task.(t))

let is_ready s t =
  check_task s t "is_ready";
  (not (has_copy s t))
  && Array.for_all (fun (u, _) -> has_copy s u) (Taskgraph.preds s.graph t)

let prt s p =
  check_proc s p "prt";
  s.prt.(p)

(* Best arrival of one predecessor's data on processor [p]. *)
let best_arrival s u ~proc:p w =
  Vec.fold_left
    (fun acc (c : copy) ->
      let delay = Machine.comm_time s.machine ~src:c.proc ~dst:p ~cost:w in
      Float.min acc (c.finish +. delay))
    infinity s.by_task.(u)

let data_ready s t ~proc:p =
  check_task s t "data_ready";
  check_proc s p "data_ready";
  Array.fold_left
    (fun acc (u, w) ->
      let arrival = best_arrival s u ~proc:p w in
      if arrival = infinity then
        invalid_arg
          (Printf.sprintf "Dup_schedule.data_ready: predecessor %d of %d unplaced" u t);
      Float.max acc arrival)
    0.0 (Taskgraph.preds s.graph t)

let pred_arrival s ~src ~proc:p ~comm =
  check_task s src "pred_arrival";
  check_proc s p "pred_arrival";
  best_arrival s src ~proc:p comm

let has_copy_on s t ~proc:p =
  check_task s t "has_copy_on";
  check_proc s p "has_copy_on";
  Vec.exists (fun (c : copy) -> c.proc = p) s.by_task.(t)

let critical_pred s t ~proc:p =
  check_task s t "critical_pred";
  check_proc s p "critical_pred";
  let best = ref None in
  Array.iter
    (fun (u, w) ->
      let arrival = best_arrival s u ~proc:p w in
      match !best with
      | Some (_, a) when a >= arrival -> ()
      | _ -> best := Some (u, arrival))
    (Taskgraph.preds s.graph t);
  match !best with
  | Some (u, arrival) when arrival > 0.0 -> Some u
  | Some _ | None -> None

let place s t ~proc:p ~start =
  check_task s t "place";
  check_proc s p "place";
  if (not (Float.is_finite start)) || start < 0.0 then
    invalid_arg (Printf.sprintf "Dup_schedule.place: bad start %g" start);
  if Vec.exists (fun (c : copy) -> c.proc = p) s.by_task.(t) then
    invalid_arg
      (Printf.sprintf "Dup_schedule.place: task %d already has a copy on %d" t p);
  Array.iter
    (fun (u, _) ->
      if not (has_copy s u) then
        invalid_arg
          (Printf.sprintf "Dup_schedule.place: predecessor %d of %d unplaced" u t))
    (Taskgraph.preds s.graph t);
  let c = { task = t; proc = p; start; finish = start +. Taskgraph.comp s.graph t } in
  Vec.push s.by_task.(t) c;
  Vec.push s.by_proc.(p) c;
  if c.finish > s.prt.(p) then s.prt.(p) <- c.finish;
  c

let makespan s = Array.fold_left Float.max 0.0 s.prt

let copies_placed s =
  Array.fold_left (fun acc v -> acc + Vec.length v) 0 s.by_task

let validate s =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Taskgraph.num_tasks s.graph in
  for t = 0 to n - 1 do
    if Vec.is_empty s.by_task.(t) then err "task %d has no copy" t
  done;
  if !errors = [] then begin
    (* per-processor exclusivity; zero-duration copies cannot conflict *)
    Array.iteri
      (fun p v ->
        let copies = Vec.to_array v in
        Array.sort
          (fun (a : copy) b -> compare (a.start, a.finish) (b.start, b.finish))
          copies;
        let frontier = ref neg_infinity in
        Array.iter
          (fun (c : copy) ->
            if c.finish > c.start && c.start < !frontier -. 1e-9 then
              err "copy of %d overlaps earlier work on processor %d" c.task p;
            if c.finish > !frontier then frontier := c.finish)
          copies)
      s.by_proc;
    (* message feasibility: every copy's inputs must be available *)
    for t = 0 to n - 1 do
      Vec.iter
        (fun (c : copy) ->
          Array.iter
            (fun (u, w) ->
              if best_arrival s u ~proc:c.proc w > c.start +. 1e-9 then
                err "copy of %d on %d starts before %d's data arrives" t c.proc u)
            (Taskgraph.preds s.graph t))
        s.by_task.(t)
    done
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
