open! Flb_taskgraph

(* Tentative evaluation of task [t] on processor [p].

   The baseline start is what plain list scheduling would pay. The
   duplication attempt recursively recomputes critical ancestors at the
   end of [p]'s timeline (root-most first), each within the remaining
   budget; if the resulting start beats the baseline the duplication list
   is returned, otherwise it is discarded. Nothing touches the real
   schedule. *)
let evaluate s g t p ~max_dups =
  let local = Hashtbl.create 8 in
  (* task -> finish of its tentative copy on p *)
  let cursor = ref (Dup_schedule.prt s p) in
  let dups = ref [] in
  let budget = ref max_dups in
  let arrival (u, w) =
    let global = Dup_schedule.pred_arrival s ~src:u ~proc:p ~comm:w in
    match Hashtbl.find_opt local u with
    | Some f -> Float.min global f
    | None -> global
  in
  let data_ready_of task =
    Array.fold_left (fun acc e -> Float.max acc (arrival e)) 0.0 (Taskgraph.preds g task)
  in
  let baseline = Float.max !cursor (data_ready_of t) in
  (* The predecessor whose message dominates [task]'s data-ready time and
     that duplication could still help (not yet local to p). *)
  let critical_remote task =
    let best =
      Array.fold_left
        (fun best e ->
          match best with
          | Some be when arrival be >= arrival e -> best
          | _ -> Some e)
        None (Taskgraph.preds g task)
    in
    match best with
    | Some (u, _)
      when (not (Hashtbl.mem local u)) && not (Dup_schedule.has_copy_on s u ~proc:p)
      ->
      Some u
    | Some _ | None -> None
  in
  (* Recursively recompute [u] on p: first shrink u's own data-ready time
     by duplicating its critical ancestors, then append u's copy. *)
  let rec make_local u =
    if
      !budget > 0
      && (not (Hashtbl.mem local u))
      && not (Dup_schedule.has_copy_on s u ~proc:p)
    then begin
      let rec shrink () =
        if !budget > 0 && data_ready_of u > !cursor then
          match critical_remote u with
          | Some v ->
            let before = data_ready_of u in
            make_local v;
            if data_ready_of u < before then shrink ()
          | None -> ()
      in
      shrink ();
      if !budget > 0 then begin
        let start = Float.max !cursor (data_ready_of u) in
        let finish = start +. Taskgraph.comp g u in
        Hashtbl.replace local u finish;
        cursor := finish;
        dups := (u, start) :: !dups;
        decr budget
      end
    end
  in
  let rec improve () =
    if !budget > 0 && data_ready_of t > !cursor then
      match critical_remote t with
      | Some u ->
        let before = data_ready_of t in
        make_local u;
        if data_ready_of t < before then improve ()
      | None -> ()
  in
  improve ();
  let with_dups = Float.max !cursor (data_ready_of t) in
  if with_dups < baseline then (with_dups, List.rev !dups) else (baseline, [])
