open! Flb_taskgraph
open! Flb_platform
module Bitset = Flb_prelude.Bitset

type node_class = Cpn | Ibn | Obn

let classify g =
  let n = Taskgraph.num_tasks g in
  let classes = Array.make n Obn in
  let cpn_set = Bitset.create (max n 1) in
  List.iter
    (fun t ->
      classes.(t) <- Cpn;
      Bitset.add cpn_set t)
    (Levels.critical_path g);
  if n > 0 then begin
    let closure = Topo.reachable g in
    for t = 0 to n - 1 do
      if classes.(t) = Obn && Bitset.inter_cardinal closure.(t) cpn_set > 0 then
        classes.(t) <- Ibn
    done
  end;
  classes

let run ?(max_dups_per_task = 8) g machine =
  let s = Dup_schedule.create g machine in
  let blevel = Levels.blevel g in
  let place_best t =
    let best = ref None in
    for p = 0 to Dup_schedule.num_procs s - 1 do
      let start, dups = Dup_eval.evaluate s g t p ~max_dups:max_dups_per_task in
      match !best with
      | Some (_, best_start, _) when best_start <= start -> ()
      | _ -> best := Some (p, start, dups)
    done;
    match !best with
    | None -> assert false (* at least one processor exists *)
    | Some (p, start, dups) ->
      List.iter
        (fun (u, du_start) -> ignore (Dup_schedule.place s u ~proc:p ~start:du_start))
        dups;
      ignore (Dup_schedule.place s t ~proc:p ~start)
  in
  (* Schedule [t] after recursively scheduling its unscheduled ancestors,
     most critical (largest bottom level) first. *)
  let rec ensure t =
    if not (Dup_schedule.has_copy s t) then begin
      let pending =
        Array.to_list (Taskgraph.preds g t)
        |> List.filter_map (fun (u, _) ->
               if Dup_schedule.has_copy s u then None else Some u)
        |> List.sort (fun a b -> compare (-.blevel.(a), a) (-.blevel.(b), b))
      in
      List.iter ensure pending;
      place_best t
    end
  in
  (* Critical-path nodes in path order, then everything else by priority. *)
  List.iter ensure (Levels.critical_path g);
  let rest = List.init (Taskgraph.num_tasks g) Fun.id in
  List.iter ensure
    (List.sort (fun a b -> compare (-.blevel.(a), a) (-.blevel.(b), b)) rest);
  s

let schedule_length ?max_dups_per_task g machine =
  Dup_schedule.makespan (run ?max_dups_per_task g machine)
