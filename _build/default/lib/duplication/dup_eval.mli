open! Flb_taskgraph

(** Tentative duplication evaluation, shared by the duplication
    heuristics ({!Dsh}, {!Cpfd}).

    Answers: "if task [t] were placed on processor [p], how early could
    it start, given permission to recompute up to [max_dups] critical
    ancestors at the end of [p]'s timeline?" — without mutating the
    schedule. *)

val evaluate :
  Dup_schedule.t ->
  Taskgraph.t ->
  Taskgraph.task ->
  int ->
  max_dups:int ->
  float * (Taskgraph.task * float) list
(** [evaluate s g t p ~max_dups] returns the achievable start time and
    the duplications [(task, start)] that achieve it, in placement
    order (empty when duplication does not strictly beat the baseline).
    Ancestors are recomputed recursively, root-most first, each within
    the remaining budget. *)
