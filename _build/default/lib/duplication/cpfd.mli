open! Flb_taskgraph
open! Flb_platform

(** CPFD — Critical Path Fast Duplication (after Ahmad & Kwok, the
    paper's reference [1]; simplified).

    Where {!Dsh} walks tasks in plain bottom-level order, CPFD is
    critical-path-driven: tasks are classified as critical-path nodes
    (CPN — on a longest path), in-branch nodes (IBN — ancestors of some
    CPN) and out-branch nodes (OBN — everything else). CPNs are
    scheduled in path order, each preceded recursively by its still
    unscheduled IBN ancestors (most critical message first); OBNs
    follow in bottom-level order. Every placement uses the same
    duplication evaluation as DSH.

    Simplifications versus the original (DESIGN.md §5): a single
    critical path (deterministic choice) rather than re-computation
    after every step, and end-of-timeline duplication without slot
    packing. *)

val run : ?max_dups_per_task:int -> Taskgraph.t -> Machine.t -> Dup_schedule.t
(** The result passes {!Dup_schedule.validate}. [max_dups_per_task]
    defaults to 8. *)

val schedule_length : ?max_dups_per_task:int -> Taskgraph.t -> Machine.t -> float

(** Node classification, exposed for tests and instrumentation. *)
type node_class = Cpn  (** on the chosen critical path *) | Ibn | Obn

val classify : Taskgraph.t -> node_class array
