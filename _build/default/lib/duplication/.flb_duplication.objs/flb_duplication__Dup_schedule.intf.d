lib/duplication/dup_schedule.mli: Flb_platform Flb_taskgraph Machine Taskgraph
