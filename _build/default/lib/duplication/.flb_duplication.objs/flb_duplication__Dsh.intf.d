lib/duplication/dsh.mli: Dup_schedule Flb_platform Flb_taskgraph Machine Taskgraph
