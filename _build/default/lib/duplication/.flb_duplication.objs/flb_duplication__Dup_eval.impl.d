lib/duplication/dup_eval.ml: Array Dup_schedule Flb_taskgraph Float Hashtbl List Taskgraph
