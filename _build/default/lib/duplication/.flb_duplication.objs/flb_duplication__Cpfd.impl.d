lib/duplication/cpfd.ml: Array Dup_eval Dup_schedule Flb_platform Flb_prelude Flb_taskgraph Fun Levels List Taskgraph Topo
