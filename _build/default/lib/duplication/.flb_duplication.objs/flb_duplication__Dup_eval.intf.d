lib/duplication/dup_eval.mli: Dup_schedule Flb_taskgraph Taskgraph
