lib/duplication/dup_schedule.ml: Array Flb_platform Flb_prelude Flb_taskgraph Float List Machine Printf Taskgraph
