lib/duplication/dsh.ml: Array Dup_eval Dup_schedule Flb_heap Flb_platform Flb_taskgraph Levels List Stdlib Taskgraph
