open! Flb_taskgraph
open! Flb_platform

(** Schedules with task duplication.

    The paper's introduction contrasts FLB with duplication-based
    schedulers (DSH, BTDH, CPFD): those may run {e copies} of a task on
    several processors so that expensive messages are replaced by local
    recomputation. This module is the schedule representation for that
    family — unlike {!Flb_platform.Schedule}, a task may be placed more
    than once, and a consumer is satisfied by {e any} copy of its
    producer. *)

type copy = { task : Taskgraph.task; proc : int; start : float; finish : float }

type t

val create : Taskgraph.t -> Machine.t -> t

val graph : t -> Taskgraph.t

val num_procs : t -> int

val place : t -> Taskgraph.task -> proc:int -> start:float -> copy
(** Adds a copy of the task on the processor (appending to its
    timeline).
    @raise Invalid_argument if some predecessor has no copy yet, a copy
    of this task already exists on this processor, [start] is negative,
    or the processor is unknown. Feasibility of [start] is checked by
    {!validate}, not here. *)

val copies : t -> Taskgraph.task -> copy list
(** All placed copies, in placement order; [] if none. *)

val has_copy : t -> Taskgraph.task -> bool

val is_ready : t -> Taskgraph.task -> bool
(** Every predecessor has at least one copy, and the task itself has
    none (the primary placement is still pending). *)

val prt : t -> int -> float
(** Finish time of the last copy on the processor. *)

val data_ready : t -> Taskgraph.task -> proc:int -> float
(** Earliest time all predecessor data is available on the processor:
    per predecessor the {e best} copy counts —
    [min over copies (finish + comm-if-remote)]. 0 for entry tasks.
    @raise Invalid_argument if some predecessor has no copy. *)

val pred_arrival : t -> src:Taskgraph.task -> proc:int -> comm:float -> float
(** Arrival of [src]'s data on the processor through its best copy
    ([infinity] if [src] has no copy): the per-predecessor term of
    {!data_ready}, exposed for the heuristics' tentative evaluations. *)

val has_copy_on : t -> Taskgraph.task -> proc:int -> bool

val critical_pred : t -> Taskgraph.task -> proc:int -> Taskgraph.task option
(** The predecessor whose best message arrives last on this processor —
    the one a duplication heuristic should consider copying. [None] for
    entry tasks or when all data is already local at time 0. *)

val makespan : t -> float
(** Max finish time over all copies. *)

val copies_placed : t -> int
(** Total number of copies (≥ V in a complete schedule; the excess over
    V is the duplication overhead). *)

val validate : t -> (unit, string list) result
(** Complete and feasible: every task has ≥ 1 copy; per processor no two
    copies overlap; every copy starts no earlier than {e some} copy of
    each predecessor delivers its data to that processor. *)
