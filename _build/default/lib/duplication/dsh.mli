open! Flb_taskgraph
open! Flb_platform

(** A DSH-style duplication scheduler (after Kruatrachue & Lewis, 1988 —
    the first of the duplication heuristics the paper's introduction
    cites as the high-quality/high-cost alternative to list
    scheduling).

    Static-priority list scheduling (bottom level, largest first) where
    the placement of each task on each candidate processor may be
    improved by {e duplicating} predecessors onto that processor: while
    the task's start is dominated by a remote message, the sender is
    tentatively recomputed locally at the end of the processor's
    timeline, and the duplication is kept if it lowers the task's start
    time.

    Simplifications versus the original (documented in DESIGN.md):
    duplicated copies are appended to the processor's timeline rather
    than packed into earlier idle slots, and only direct predecessors
    are duplicated (no recursive ancestor chains). Both affect constant
    quality factors, not the characteristic behaviour: on fork-heavy
    graphs with expensive messages DSH beats every non-duplicating
    scheduler, at the price of extra copies and a much costlier
    scheduling loop. *)

val run : ?max_dups_per_task:int -> Taskgraph.t -> Machine.t -> Dup_schedule.t
(** [max_dups_per_task] bounds the improvement loop per (task,
    processor) evaluation; default 8. The result passes
    {!Dup_schedule.validate}. *)

val schedule_length : ?max_dups_per_task:int -> Taskgraph.t -> Machine.t -> float
