(* Walkthrough of FLB's internals: reproduces the paper's Table 1 on the
   Fig. 1 example graph, then traces a second, hand-built graph to show
   how EP/non-EP classification moves tasks between the queues.

   Run with: dune exec examples/trace_walkthrough.exe *)

open! Flb_taskgraph
open! Flb_platform

let () =
  print_endline "=== The paper's Table 1 (Fig. 1 graph, 2 processors) ===";
  print_string (Flb_core.Flb_trace.render_fig1 ());
  print_newline ();

  print_endline "=== A second trace: diamond with an expensive left edge ===";
  (*        t0(1)
           /     \   comm: left 10, right 1
        t1(3)   t2(3)
           \     /   comm: 1 each
            t3(1)                                           *)
  let g =
    Taskgraph.of_arrays
      ~comp:[| 1.0; 3.0; 3.0; 1.0 |]
      ~edges:[| (0, 1, 10.0); (0, 2, 1.0); (1, 3, 2.0); (2, 3, 1.0) |]
  in
  let machine = Machine.clique ~num_procs:2 in
  let sched, rows = Flb_core.Flb_trace.collect g machine in
  print_string (Flb_core.Flb_trace.render ~num_procs:2 rows);
  Printf.printf "schedule length: %g\n\n" (Schedule.makespan sched);
  print_endline
    "Reading the trace: after t0 is placed both successors are EP type\n\
     (their last messages arrive after p0 goes idle), and t1 wins the EP\n\
     queue on its larger bottom level. Placing t1 pushes PRT(p0) to 4,\n\
     past t2's last-message-arrival time of 2 — so t2 is demoted to the\n\
     non-EP queue and starts on the processor that goes idle first, p1.\n\
     Each row shows the queues FLB consults: one EMT-sorted EP queue per\n\
     processor and the global LMT-sorted non-EP queue; the scheduled\n\
     pair is the better of the two heads.";

  (* Show the classification predicate directly. *)
  let s = Schedule.create g machine in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  Printf.printf "\nafter placing t0: LMT(t1)=%g PRT(p0)=%g -> EP type: %b\n"
    (Schedule.lmt s 1) (Schedule.prt s 0) (Schedule.is_ep_type s 1);
  Printf.printf "                  LMT(t2)=%g PRT(p0)=%g -> EP type: %b\n"
    (Schedule.lmt s 2) (Schedule.prt s 0) (Schedule.is_ep_type s 2)
