(* Quickstart: build a task graph through the public API, schedule it with
   FLB on a 2-processor machine, inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Flb_taskgraph
open Flb_platform

let () =
  (* A little pipeline: one producer fans out to three workers that join
     into a consumer. Computation costs in brackets, communication on the
     edges. *)
  let b = Taskgraph.Builder.create () in
  let producer = Taskgraph.Builder.add_task b ~comp:2.0 in
  let workers = List.init 3 (fun _ -> Taskgraph.Builder.add_task b ~comp:4.0) in
  let consumer = Taskgraph.Builder.add_task b ~comp:1.0 in
  List.iter
    (fun w ->
      Taskgraph.Builder.add_edge b ~src:producer ~dst:w ~comm:1.0;
      Taskgraph.Builder.add_edge b ~src:w ~dst:consumer ~comm:1.0)
    workers;
  let graph = Taskgraph.Builder.build b in
  Format.printf "graph: %a@." Taskgraph.pp graph;

  (* Schedule on two processors with the paper's algorithm. *)
  let machine = Machine.clique ~num_procs:2 in
  let schedule = Flb_core.Flb.run graph machine in

  Printf.printf "makespan: %g (sequential time %g, speedup %.2f)\n"
    (Schedule.makespan schedule)
    (Metrics.sequential_time schedule)
    (Metrics.speedup schedule);

  (* Where did everything go? *)
  print_string (Gantt.render_listing schedule);
  print_string (Gantt.render schedule);

  (* Double-check the schedule by replaying it on the simulated machine. *)
  match Flb_sim.Simulator.run schedule with
  | Ok outcome ->
    Printf.printf "simulator agrees: %b (makespan %g, %d messages)\n"
      (Flb_sim.Simulator.agrees_with_schedule schedule outcome)
      outcome.Flb_sim.Simulator.makespan outcome.Flb_sim.Simulator.messages
  | Error _ -> print_endline "simulation failed (this should never happen)"
