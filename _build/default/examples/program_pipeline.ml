(* From program text to a placed schedule: the compile-time scheduling
   pipeline end to end. A map-reduce-style program is written in the
   structured language, compiled to a task graph, analyzed, scheduled
   with FLB at two granularities, and cross-checked in the simulator.

   Run with: dune exec examples/program_pipeline.exe *)

open! Flb_taskgraph
open! Flb_platform
open! Flb_lang

let source =
  "(seq :comm 3\n\
  \  (task load 2)\n\
  \  (par (task 4) (task 4) (task 4) (task 4) (task 4) (task 4) (task 4) (task 4))\n\
  \  (task shuffle 1)\n\
  \  (par (task 5) (task 5) (task 5) (task 5) (task 5) (task 5) (task 5) (task 5))\n\
  \  (task merge 2))"

let () =
  print_endline "program source:";
  print_endline source;
  let program = Parse.program_of_string source in
  let graph = Program.compile program in
  Format.printf "\ncompiled: %a@." Taskgraph.pp graph;
  List.iter
    (fun (t, l) -> Printf.printf "  t%d is %S\n" t l)
    (Program.labels program);
  Printf.printf "parallelism profile: average %.2f, peak %d\n\n"
    (Profile.average_parallelism graph)
    (Profile.peak_parallelism graph);

  (* Schedule as written, then re-schedule with halved communication —
     the compiler's granularity knob. *)
  List.iter
    (fun (label, g) ->
      let machine = Machine.clique ~num_procs:4 in
      let s = Flb_core.Flb.run g machine in
      let sim =
        match Flb_sim.Simulator.run s with
        | Ok o -> o
        | Error _ -> failwith "replay failed"
      in
      Printf.printf "%s: makespan %g, speedup %.2f, %d messages (sim agrees: %b)\n"
        label (Schedule.makespan s) (Metrics.speedup s) sim.Flb_sim.Simulator.messages
        (Flb_sim.Simulator.agrees_with_schedule s sim))
    [
      ("as written (comm 3)    ", graph);
      ("halved messages (comm 1.5)", Flb_workloads.Weights.scale_comm graph ~factor:0.5);
    ];
  print_endline
    "\nThe same program gets markedly faster when the compiler can cut the\n\
     per-message cost - granularity, not the scheduler, is the lever here.";

  (* the printer round-trips, so generated programs can be saved *)
  print_endline "\npretty-printed back from the AST:";
  print_string (Parse.to_string program)
