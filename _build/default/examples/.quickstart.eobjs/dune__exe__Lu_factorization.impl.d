examples/lu_factorization.ml: Flb_core Flb_experiments Flb_platform Flb_taskgraph List Machine Metrics Printf Schedule Sys
