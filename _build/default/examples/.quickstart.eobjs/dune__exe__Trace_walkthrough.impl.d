examples/trace_walkthrough.ml: Flb_core Flb_platform Flb_taskgraph Machine Printf Schedule Taskgraph
