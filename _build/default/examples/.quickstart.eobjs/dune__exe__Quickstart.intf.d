examples/quickstart.mli:
