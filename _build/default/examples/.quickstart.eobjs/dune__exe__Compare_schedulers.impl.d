examples/compare_schedulers.ml: Flb_core Flb_experiments Flb_platform Flb_prelude Flb_schedulers Flb_taskgraph Flb_workloads Levels List Machine Metrics Printf Schedule Taskgraph Width
