examples/program_pipeline.mli:
