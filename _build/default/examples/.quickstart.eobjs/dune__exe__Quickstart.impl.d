examples/quickstart.ml: Flb_core Flb_platform Flb_sim Flb_taskgraph Format Gantt List Machine Metrics Printf Schedule Taskgraph
