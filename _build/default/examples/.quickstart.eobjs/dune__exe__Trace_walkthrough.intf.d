examples/trace_walkthrough.mli:
