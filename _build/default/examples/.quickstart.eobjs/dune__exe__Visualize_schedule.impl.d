examples/visualize_schedule.ml: Chrome_trace Dot Flb_core Flb_experiments Flb_platform Flb_taskgraph Lower_bounds Machine Out_channel Printf Profile Schedule Svg Taskgraph
