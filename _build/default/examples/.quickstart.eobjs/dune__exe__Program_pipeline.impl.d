examples/program_pipeline.ml: Flb_core Flb_lang Flb_platform Flb_sim Flb_taskgraph Flb_workloads Format List Machine Metrics Parse Printf Profile Program Schedule Taskgraph
