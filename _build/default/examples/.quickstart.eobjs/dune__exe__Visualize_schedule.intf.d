examples/visualize_schedule.mli:
