examples/stencil_pipeline.ml: Flb_core Flb_experiments Flb_platform Flb_workloads Gantt List Machine Metrics Printf Schedule
