(* The paper's motivating scenario: compiling a large dense linear-algebra
   program for a distributed-memory machine. This example builds the LU
   decomposition task graph at a realistic size, schedules it with FLB and
   the baselines across machine sizes, and shows why the paper cares about
   scheduling cost: ETF's price grows with P while FLB's stays flat.

   Run with: dune exec examples/lu_factorization.exe *)

open Flb_platform
module E = Flb_experiments

let time f =
  let t0 = Sys.time () in
  let y = f () in
  (y, Sys.time () -. t0)

let () =
  let workload = E.Workload_suite.lu ~tasks:2000 () in
  let graph = E.Workload_suite.instance workload ~ccr:0.2 ~seed:1 in
  Printf.printf "LU decomposition graph: %d tasks, %d edges (CCR 0.2)\n\n"
    (Flb_taskgraph.Taskgraph.num_tasks graph)
    (Flb_taskgraph.Taskgraph.num_edges graph);

  let table =
    E.Table.create
      ~header:[ "P"; "algorithm"; "makespan"; "speedup"; "sched time [ms]" ]
  in
  List.iter
    (fun p ->
      let machine = Machine.clique ~num_procs:p in
      List.iter
        (fun (algo : E.Registry.t) ->
          let s, seconds = time (fun () -> algo.run graph machine) in
          E.Table.add_row table
            [
              string_of_int p;
              algo.name;
              Printf.sprintf "%.1f" (Schedule.makespan s);
              Printf.sprintf "%.2f" (Metrics.speedup s);
              Printf.sprintf "%.2f" (seconds *. 1000.0);
            ])
        [ E.Registry.flb; E.Registry.etf; E.Registry.mcp ];
      E.Table.add_separator table)
    [ 4; 16; 32 ];
  print_string (E.Table.render table);

  print_newline ();
  print_endline
    "Note how the quality (makespan) of FLB tracks ETF and MCP while its\n\
     scheduling time stays flat in P — the paper's core trade-off.";

  (* LU is the paper's worst case for speedup: long fork-join chains. *)
  let machine = Machine.clique ~num_procs:32 in
  let s = Flb_core.Flb.run graph machine in
  Printf.printf
    "\nspeedup on 32 processors: %.2f (LU flattens early; compare the\n\
     Stencil example, which scales to the machine width)\n"
    (Metrics.speedup s)
