(* Export a schedule in every supported visual format: text Gantt, SVG,
   Chrome trace-event JSON, processor-colored DOT — plus the workload's
   parallelism profile, which explains the schedule's shape before any
   scheduling happens.

   Run with: dune exec examples/visualize_schedule.exe
   (files are written to the current directory)                        *)

open! Flb_taskgraph
open! Flb_platform

let () =
  let workload = Flb_experiments.Workload_suite.lu ~tasks:120 () in
  let graph = Flb_experiments.Workload_suite.instance workload ~ccr:1.0 ~seed:1 in
  let machine = Machine.clique ~num_procs:4 in

  Printf.printf "LU graph (%d tasks) — idealized parallelism profile:\n\n"
    (Taskgraph.num_tasks graph);
  print_string (Profile.render graph);
  Printf.printf
    "\naverage parallelism %.2f, peak %d: the triangular profile is why\n\
     LU's speedup flattens (paper Fig. 3) — late stages have no work to\n\
     spread.\n\n"
    (Profile.average_parallelism graph)
    (Profile.peak_parallelism graph);

  let schedule = Flb_core.Flb.run graph machine in
  Printf.printf "FLB on 4 processors: makespan %g (lower bound %.1f)\n"
    (Schedule.makespan schedule)
    (Lower_bounds.best graph ~procs:4);

  Svg.save schedule ~path:"lu_schedule.svg";
  Chrome_trace.save schedule ~path:"lu_schedule.trace.json";
  let dot = Dot.to_string_with_placement graph ~proc_of:(Schedule.proc schedule) in
  Out_channel.with_open_text "lu_schedule.dot" (fun oc -> output_string oc dot);
  print_endline "wrote lu_schedule.svg (browser), lu_schedule.trace.json";
  print_endline "(chrome://tracing or ui.perfetto.dev), lu_schedule.dot (graphviz)"
