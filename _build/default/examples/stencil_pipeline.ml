(* Granularity study on a regular stencil computation: the same dependence
   structure scheduled at coarse (CCR 0.2) and fine (CCR 5.0) grain, the
   contrast driving the paper's Figure 3/4 discussion. Includes a Gantt
   chart of a small instance so the placement is visible.

   Run with: dune exec examples/stencil_pipeline.exe *)

open Flb_platform
module E = Flb_experiments

let () =
  (* Small instance first: watch FLB lay out a 6-wide stencil on 3
     processors. *)
  let small = Flb_workloads.Stencil.structure ~width:6 ~layers:4 in
  let machine3 = Machine.clique ~num_procs:3 in
  let s = Flb_core.Flb.run small machine3 in
  Printf.printf "6x4 stencil on 3 processors (unit weights): makespan %g\n"
    (Schedule.makespan s);
  print_string (Gantt.render s);
  print_newline ();

  (* Now the paper-scale granularity sweep. *)
  let workload = E.Workload_suite.stencil ~tasks:2000 () in
  let table =
    E.Table.create ~header:[ "CCR"; "P"; "FLB speedup"; "efficiency"; "idle %" ]
  in
  List.iter
    (fun ccr ->
      let graph = E.Workload_suite.instance workload ~ccr ~seed:1 in
      List.iter
        (fun p ->
          let machine = Machine.clique ~num_procs:p in
          let s = Flb_core.Flb.run graph machine in
          E.Table.add_row table
            [
              Printf.sprintf "%.1f" ccr;
              string_of_int p;
              Printf.sprintf "%.2f" (Metrics.speedup s);
              Printf.sprintf "%.2f" (Metrics.efficiency s);
              Printf.sprintf "%.0f" (Metrics.idle_fraction s *. 100.0);
            ])
        [ 2; 8; 32 ];
      E.Table.add_separator table)
    [ 0.2; 5.0 ];
  print_string (E.Table.render table);
  print_endline
    "\nCoarse grain (CCR 0.2) scales to the machine; fine grain (CCR 5.0)\n\
     pays for every boundary message and flattens — the gap the paper's\n\
     granularity experiments quantify."
