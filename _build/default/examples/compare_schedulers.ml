(* Head-to-head of every scheduler in the library — the paper's five plus
   the extensions — on an irregular random DAG, with the DSC clustering
   stage shown separately so the multi-step method's structure is
   visible.

   Run with: dune exec examples/compare_schedulers.exe *)

open! Flb_taskgraph
open! Flb_platform
module E = Flb_experiments

let () =
  let rng = Flb_prelude.Rng.create ~seed:2024 in
  let structure =
    Flb_workloads.Random_dag.layered ~rng ~layers:40 ~min_width:2 ~max_width:12
      ~edge_probability:0.25
  in
  let graph = Flb_workloads.Weights.assign structure ~rng ~ccr:1.0 in
  Printf.printf "random layered DAG: %d tasks, %d edges, CCR %.2f\n"
    (Taskgraph.num_tasks graph) (Taskgraph.num_edges graph) (Taskgraph.ccr graph);
  Printf.printf "critical path %.1f, width (level bound) %d\n\n"
    (Levels.cp_length graph)
    (Width.max_level_width graph);

  (* The clustering step on its own. *)
  let clustering = Flb_schedulers.Dsc.cluster graph in
  Printf.printf "DSC clustering: %d clusters, unbounded-processor time %.1f\n\n"
    (Flb_schedulers.Dsc.num_clusters clustering)
    (Flb_schedulers.Dsc.parallel_time graph clustering);

  let machine = Machine.clique ~num_procs:8 in
  let mcp_len = Flb_schedulers.Mcp.schedule_length graph machine in
  let table =
    E.Table.create
      ~header:[ "algorithm"; "makespan"; "NSL vs MCP"; "imbalance"; "valid" ]
  in
  List.iter
    (fun (algo : E.Registry.t) ->
      let s = algo.run graph machine in
      E.Table.add_row table
        [
          algo.name;
          Printf.sprintf "%.1f" (Schedule.makespan s);
          E.Table.cell_float (Metrics.nsl s ~reference:mcp_len);
          E.Table.cell_float (Metrics.load_imbalance s);
          (match Schedule.validate s with Ok () -> "yes" | Error _ -> "NO");
        ])
    E.Registry.extended_set;
  print_string (E.Table.render table);

  (* And the run-time verification of the paper's Theorem 3. *)
  match Flb_core.Flb_check.run_checked graph machine with
  | Ok _ ->
    print_endline
      "\nTheorem 3 verified: every FLB iteration chose a globally\n\
       earliest-starting (task, processor) pair."
  | Error vs ->
    Printf.printf "\nTheorem 3 VIOLATED in %d iterations (bug!)\n" (List.length vs)
