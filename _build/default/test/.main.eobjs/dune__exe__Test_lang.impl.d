test/test_lang.ml: Alcotest Flb_core Flb_lang Flb_platform Flb_taskgraph Float List Parse Printf Program QCheck QCheck_alcotest String Taskgraph Testutil Topo
