test/main.mli:
