test/test_bitset.ml: Alcotest Bitset Flb_prelude Int List QCheck QCheck_alcotest Set Testutil
