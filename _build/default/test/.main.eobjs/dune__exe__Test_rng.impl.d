test/test_rng.ml: Alcotest Array Flb_prelude Float Fun List Parallel QCheck QCheck_alcotest Rng Testutil
