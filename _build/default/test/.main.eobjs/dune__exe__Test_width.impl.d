test/test_width.ml: Alcotest Array Example Flb_taskgraph Flb_workloads List QCheck_alcotest Taskgraph Testutil Width
