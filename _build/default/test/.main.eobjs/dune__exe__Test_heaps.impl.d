test/test_heaps.ml: Alcotest Flb_heap Float Hashtbl Int List QCheck QCheck_alcotest Testutil
