test/test_taskgraph.ml: Alcotest Array Flb_taskgraph Float Format List QCheck_alcotest String Taskgraph Testutil
