test/test_stats.ml: Alcotest Array Flb_prelude Float Format Gen List QCheck QCheck_alcotest Stats String Testutil
