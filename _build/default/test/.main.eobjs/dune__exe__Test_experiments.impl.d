test/test_experiments.ml: Alcotest Flb_experiments Flb_taskgraph Float Hashtbl List Printf String Testutil
