test/test_serial_dot.ml: Alcotest Dot Example Filename Flb_taskgraph Fun List QCheck_alcotest Serial String Sys Taskgraph Testutil
