test/test_workloads.ml: Alcotest Flb_core Flb_platform Flb_prelude Flb_taskgraph Flb_workloads Float List Printf QCheck QCheck_alcotest Rng Taskgraph Testutil Topo Width
