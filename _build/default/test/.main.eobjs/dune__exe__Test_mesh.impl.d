test/test_mesh.ml: Alcotest Example Flb_core Flb_duplication Flb_experiments Flb_platform Flb_sim Flb_taskgraph List Machine QCheck_alcotest Schedule String Testutil
