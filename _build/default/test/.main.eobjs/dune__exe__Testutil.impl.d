test/testutil.ml: Alcotest Flb_prelude Flb_taskgraph Flb_workloads List Printf QCheck QCheck_alcotest Rng Taskgraph
