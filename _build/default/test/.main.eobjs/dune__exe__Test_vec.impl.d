test/test_vec.ml: Alcotest Flb_prelude List QCheck QCheck_alcotest Testutil Vec
