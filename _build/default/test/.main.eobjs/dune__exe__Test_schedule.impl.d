test/test_schedule.ml: Alcotest Example Flb_core Flb_platform Flb_schedulers Flb_taskgraph Fun Gantt Levels List Machine Metrics QCheck_alcotest Schedule Schedule_io String Taskgraph Testutil
