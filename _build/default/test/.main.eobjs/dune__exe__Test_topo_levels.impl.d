test/test_topo_levels.ml: Alcotest Array Example Flb_prelude Flb_taskgraph Float Levels List Printf QCheck_alcotest Taskgraph Testutil Topo
