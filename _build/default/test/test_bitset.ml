open! Flb_prelude
open Testutil

let test_basic () =
  let s = Bitset.create 100 in
  check_bool "initially empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_bool "mem 0" true (Bitset.mem s 0);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 64" true (Bitset.mem s 64);
  check_bool "not mem 1" false (Bitset.mem s 1);
  check_int "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  check_bool "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 3 (Bitset.cardinal s)

let test_bounds () =
  let s = Bitset.create 10 in
  check_raises_invalid "mem out of range" (fun () -> ignore (Bitset.mem s 10));
  check_raises_invalid "add negative" (fun () -> Bitset.add s (-1));
  check_raises_invalid "negative capacity" (fun () -> ignore (Bitset.create (-1)))

let test_union () =
  let a = Bitset.create 200 and b = Bitset.create 200 in
  Bitset.add a 5;
  Bitset.add b 150;
  Bitset.add b 5;
  Bitset.union_into ~dst:a ~src:b;
  check_int "union cardinal" 2 (Bitset.cardinal a);
  check_bool "gained 150" true (Bitset.mem a 150);
  let c = Bitset.create 10 in
  check_raises_invalid "capacity mismatch" (fun () -> Bitset.union_into ~dst:a ~src:c)

let test_iter_order () =
  let s = Bitset.create 300 in
  List.iter (Bitset.add s) [ 250; 3; 64; 127; 128 ];
  Alcotest.(check (list int)) "ascending" [ 3; 64; 127; 128; 250 ] (Bitset.to_list s)

let test_clear_copy_equal () =
  let s = Bitset.create 50 in
  Bitset.add s 10;
  let c = Bitset.copy s in
  check_bool "copy equal" true (Bitset.equal s c);
  Bitset.add c 20;
  check_bool "copy independent" false (Bitset.mem s 20);
  Bitset.clear s;
  check_bool "cleared" true (Bitset.is_empty s)

module Iset = Set.Make (Int)

let qsuite =
  let ops =
    QCheck.(
      pair (int_range 1 200)
        (small_list (pair bool (int_range 0 1000))))
  in
  [
    qtest "agrees with Set model" ops (fun (cap, ops) ->
        let s = Bitset.create cap in
        let model = ref Iset.empty in
        List.iter
          (fun (add, raw) ->
            let i = raw mod cap in
            if add then begin
              Bitset.add s i;
              model := Iset.add i !model
            end
            else begin
              Bitset.remove s i;
              model := Iset.remove i !model
            end)
          ops;
        Bitset.to_list s = Iset.elements !model
        && Bitset.cardinal s = Iset.cardinal !model);
    qtest "inter_cardinal agrees with model" ops (fun (cap, ops) ->
        let a = Bitset.create cap and b = Bitset.create cap in
        let ma = ref Iset.empty and mb = ref Iset.empty in
        List.iter
          (fun (to_a, raw) ->
            let i = raw mod cap in
            if to_a then begin
              Bitset.add a i;
              ma := Iset.add i !ma
            end
            else begin
              Bitset.add b i;
              mb := Iset.add i !mb
            end)
          ops;
        Bitset.inter_cardinal a b = Iset.cardinal (Iset.inter !ma !mb));
  ]

let suite =
  [
    Alcotest.test_case "basic ops" `Quick test_basic;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "iter order" `Quick test_iter_order;
    Alcotest.test_case "clear/copy/equal" `Quick test_clear_copy_equal;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
