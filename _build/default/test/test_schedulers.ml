open! Flb_taskgraph
open! Flb_platform
open! Flb_schedulers
open Testutil

let machine p = Machine.clique ~num_procs:p

let expect_valid name s =
  match Schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "%s produced invalid schedule: %s" name (String.concat "; " es)

(* --- ETF --- *)

let test_etf_fig1 () =
  let s = Etf.run (Example.fig1 ()) (machine 2) in
  expect_valid "ETF" s;
  (* ETF uses the same selection criterion as FLB, so on this graph the
     makespan must also be 14 (the tie-breaks never bind here). *)
  check_float "makespan" 14.0 (Schedule.makespan s)

let test_etf_single_proc () =
  let g = Example.fig1 () in
  check_float "serialized" (Taskgraph.total_comp g)
    (Etf.schedule_length g (machine 1))

(* --- MCP --- *)

let test_mcp_variants_valid () =
  let g = Example.fig1 () in
  List.iter
    (fun (name, s) -> expect_valid name s)
    [
      ("MCP/random", Mcp.run g (machine 2));
      ("MCP/id", Mcp.run ~tie:Mcp.Task_id_tie g (machine 2));
      ("MCP/descendant", Mcp.run ~tie:Mcp.Descendant_tie g (machine 2));
      ("MCP/insertion", Mcp.run ~insertion:true g (machine 2));
    ]

let test_mcp_alap_order_topological () =
  let g = Example.fig1 () in
  List.iter
    (fun tie ->
      check_bool "alap order topological" true
        (Topo.is_topological g (Mcp.alap_order ~tie g)))
    [ Mcp.Random_tie 1; Mcp.Task_id_tie; Mcp.Descendant_tie ]

let test_mcp_insertion_no_worse () =
  (* insertion can only fill gaps, never create later starts, on the same
     priority order; compare on the paper suite at small scale *)
  let w = Flb_experiments.Workload_suite.lu ~tasks:150 () in
  let g = Flb_experiments.Workload_suite.instance w ~ccr:2.0 ~seed:1 in
  let plain = Mcp.schedule_length ~tie:Mcp.Task_id_tie g (machine 4) in
  let ins = Mcp.schedule_length ~tie:Mcp.Task_id_tie ~insertion:true g (machine 4) in
  check_bool "insertion not catastrophically worse" true (ins <= plain *. 1.05)

let test_mcp_seed_determinism () =
  let g = Example.fig1 () in
  check_float "same seed, same result"
    (Mcp.schedule_length ~tie:(Mcp.Random_tie 7) g (machine 2))
    (Mcp.schedule_length ~tie:(Mcp.Random_tie 7) g (machine 2))

(* --- FCP --- *)

let test_fcp_fig1 () =
  let s = Fcp.run (Example.fig1 ()) (machine 2) in
  expect_valid "FCP" s

(* The two-processor rule must agree with the exhaustive scan on the
   minimum EST value (the lemma FCP and FLB share). *)
let test_two_proc_rule_matches_bruteforce () =
  let g = Example.fig1 () in
  let s = Schedule.create g (machine 2) in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  List.iter
    (fun t ->
      let _, brute = Schedule.min_est_over_procs s t in
      let _, lemma = List_common.two_proc_rule s t in
      check_float (Printf.sprintf "t%d" t) brute lemma)
    [ 1; 2; 3 ]

(* --- DSC --- *)

let test_dsc_fig1 () =
  let g = Example.fig1 () in
  let c = Dsc.cluster g in
  (match Dsc.validate g c with
  | Ok () -> ()
  | Error es -> Alcotest.failf "DSC invalid: %s" (String.concat "; " es));
  check_bool "fewer clusters than tasks" true (Dsc.num_clusters c <= 8);
  check_bool "at least one cluster" true (Dsc.num_clusters c >= 1);
  (* clustering with free communication inside clusters can only improve
     on the fully sequential time *)
  check_bool "parallel time sane" true
    (Dsc.parallel_time g c <= Taskgraph.total_comp g +. Taskgraph.total_comm g)

let test_dsc_chain_single_cluster () =
  (* a chain communicates heavily; DSC must zero it into one cluster *)
  let g = Flb_workloads.Shapes.chain ~length:10 in
  let c = Dsc.cluster g in
  check_int "one cluster" 1 (Dsc.num_clusters c);
  check_float "no communication left" (Taskgraph.total_comp g) (Dsc.parallel_time g c)

let test_dsc_independent_tasks () =
  let g = Flb_workloads.Shapes.independent ~tasks:6 in
  let c = Dsc.cluster g in
  check_int "six clusters" 6 (Dsc.num_clusters c)

(* --- Sarkar clustering --- *)

let test_sarkar_fig1 () =
  let g = Example.fig1 () in
  let c = Sarkar.cluster g in
  (match Dsc.validate g c with
  | Ok () -> ()
  | Error es -> Alcotest.failf "Sarkar invalid: %s" (String.concat "; " es));
  (* internalization never worsens the unclustered parallel time *)
  let unclustered = Sarkar.parallel_time_of_grouping g ~cluster_of:(fun t -> t) in
  check_bool "pt no worse than unclustered" true
    (Dsc.parallel_time g c <= unclustered +. 1e-9)

let test_sarkar_chain () =
  let g = Flb_workloads.Shapes.chain ~length:8 in
  let c = Sarkar.cluster g in
  check_int "chain internalizes fully" 1 (Dsc.num_clusters c);
  check_float "pt = total comp" 8.0 (Dsc.parallel_time g c)

let test_sarkar_parallel_time_known () =
  let g = small_graph () in
  (* all tasks in one cluster: strictly serial in topo order *)
  check_float "single cluster is serial" 7.0
    (Sarkar.parallel_time_of_grouping g ~cluster_of:(fun _ -> 0));
  (* all separate: the full-communication critical path *)
  check_float "singletons pay all messages" (Levels.cp_length g)
    (Sarkar.parallel_time_of_grouping g ~cluster_of:(fun t -> t))

let test_sarkar_llb () =
  let g = Example.fig1 () in
  let s = Llb.run g (machine 2) (Sarkar.cluster g) in
  expect_valid "SARKAR-LLB" s

(* --- LLB / DSC-LLB --- *)

let test_dsc_llb_valid_and_clustered () =
  let g = Example.fig1 () in
  let clustering = Dsc.cluster g in
  let s = Llb.run g (machine 2) clustering in
  expect_valid "LLB" s;
  (* cluster integrity: tasks of one cluster end up on one processor *)
  Array.iter
    (fun tasks ->
      match tasks with
      | [] -> ()
      | first :: rest ->
        let p = Schedule.proc s first in
        List.iter
          (fun t -> check_int "cluster stays together" p (Schedule.proc s t))
          rest)
    clustering.Dsc.clusters

let test_dsc_llb_both_priorities () =
  let g = Example.fig1 () in
  expect_valid "DSC-LLB least" (Dsc_llb.run ~priority:Llb.Least_blevel g (machine 2));
  expect_valid "DSC-LLB greatest"
    (Dsc_llb.run ~priority:Llb.Greatest_blevel g (machine 2))

(* --- extensions and naive baselines --- *)

let test_extensions_fig1 () =
  let g = Example.fig1 () in
  expect_valid "HLFET" (Hlfet.run g (machine 2));
  expect_valid "DLS" (Dls.run g (machine 2));
  expect_valid "ISH" (Ish.run g (machine 2));
  expect_valid "RR" (Naive.round_robin g (machine 2));
  expect_valid "random placement" (Naive.random_placement ~seed:3 g (machine 2))

let test_ish_uses_gaps () =
  (* a long local chain on p0 plus an independent task whose message-free
     slack lets ISH slot it into p0's idle time... simpler: ISH must never
     be worse than HLFET on a graph with an obvious gap *)
  let g =
    Taskgraph.of_arrays
      ~comp:[| 1.0; 1.0; 5.0; 1.0 |]
      ~edges:[| (0, 1, 8.0); (1, 3, 1.0); (0, 2, 0.0) |]
  in
  let ish = Ish.schedule_length g (machine 2) in
  let hlfet = Hlfet.schedule_length g (machine 2) in
  check_bool "insertion no worse here" true (ish <= hlfet +. 1e-9)

let test_serial_baseline () =
  let g = Example.fig1 () in
  let s = Naive.serial g (machine 3) in
  expect_valid "serial" s;
  check_float "serial = total comp" (Taskgraph.total_comp g) (Schedule.makespan s);
  Alcotest.(check (list int)) "all on p0" [] (Schedule.tasks_on s 1)

(* --- cross-algorithm properties --- *)

let all_algorithms g m =
  [
    ("FLB", Flb_core.Flb.run g m);
    ("ETF", Etf.run g m);
    ("MCP", Mcp.run g m);
    ("MCP-ins", Mcp.run ~insertion:true g m);
    ("FCP", Fcp.run g m);
    ("DSC-LLB", Dsc_llb.run g m);
    ("DSC-LLB-l", Dsc_llb.run ~priority:Llb.Least_blevel g m);
    ("SARKAR-LLB", Llb.run g m (Sarkar.cluster g));
    ("HLFET", Hlfet.run g m);
    ("DLS", Dls.run g m);
    ("ISH", Ish.run g m);
    ("RR", Naive.round_robin g m);
    ("serial", Naive.serial g m);
  ]

let qsuite =
  [
    qtest ~count:120 "every scheduler yields a complete valid schedule"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let m = machine procs in
        List.for_all
          (fun (_, s) -> Schedule.is_complete s && Schedule.validate s = Ok ())
          (all_algorithms g m));
    qtest ~count:120 "makespans at least the computation critical path"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let m = machine procs in
        let comp_cp = Array.fold_left Float.max 0.0 (Levels.blevel_comp_only g) in
        List.for_all
          (fun (_, s) -> Schedule.makespan s >= comp_cp -. 1e-9)
          (all_algorithms g m));
    qtest ~count:120 "FLB and ETF choose equal-EST trajectories" arb_scheduling_case
      (fun (p, procs) ->
        (* The paper proves FLB selects the ready task starting the
           earliest, the ETF criterion; both algorithms' schedules are
           therefore sequences of globally-minimal EST choices. Running
           ETF's scan inside FLB's run (Flb_check) is the strongest form
           of this statement; here we also check the two algorithms end
           with identical makespan on one processor (where tie-breaking
           cannot change the outcome). *)
        let g = build_dag p in
        ignore procs;
        let m = machine 1 in
        (* tasks are summed in different orders by the two algorithms, so
           allow last-ulp rounding differences *)
        Float.abs (Flb_core.Flb.schedule_length g m -. Etf.schedule_length g m)
        < 1e-6);
    qtest ~count:80 "DSC clusterings validate" arb_dag_params (fun p ->
        let g = build_dag p in
        Dsc.validate g (Dsc.cluster g) = Ok ());
    qtest ~count:80 "LLB keeps clusters together" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        let clustering = Dsc.cluster g in
        let s = Llb.run g (machine procs) clustering in
        Array.for_all
          (fun tasks ->
            match tasks with
            | [] -> true
            | first :: rest ->
              List.for_all (fun t -> Schedule.proc s t = Schedule.proc s first) rest)
          clustering.Dsc.clusters);
    qtest ~count:80 "two-processor rule achieves the brute-force minimum EST"
      arb_scheduling_case (fun (p, procs) ->
        (* check the lemma on a random partial schedule: schedule a prefix
           with FCP, then compare rules on every ready task *)
        let g = build_dag p in
        let m = machine procs in
        let s = Schedule.create g m in
        (* schedule roughly half the tasks in topological order *)
        let topo = Topo.order g in
        let half = Array.length topo / 2 in
        Array.iteri
          (fun i t ->
            if i < half then begin
              let proc, est = Schedule.min_est_over_procs s t in
              Schedule.assign s t ~proc ~start:est
            end)
          topo;
        List.for_all
          (fun t ->
            let _, brute = Schedule.min_est_over_procs s t in
            let _, lemma = List_common.two_proc_rule s t in
            Float.abs (brute -. lemma) < 1e-9)
          (Schedule.ready_tasks s));
  ]

let suite =
  [
    Alcotest.test_case "ETF on fig1" `Quick test_etf_fig1;
    Alcotest.test_case "ETF single proc" `Quick test_etf_single_proc;
    Alcotest.test_case "MCP variants valid" `Quick test_mcp_variants_valid;
    Alcotest.test_case "MCP ALAP order topological" `Quick test_mcp_alap_order_topological;
    Alcotest.test_case "MCP insertion" `Quick test_mcp_insertion_no_worse;
    Alcotest.test_case "MCP seeded determinism" `Quick test_mcp_seed_determinism;
    Alcotest.test_case "FCP on fig1" `Quick test_fcp_fig1;
    Alcotest.test_case "two-proc rule vs brute force (fig1)" `Quick
      test_two_proc_rule_matches_bruteforce;
    Alcotest.test_case "Sarkar on fig1" `Quick test_sarkar_fig1;
    Alcotest.test_case "Sarkar on a chain" `Quick test_sarkar_chain;
    Alcotest.test_case "Sarkar parallel time" `Quick test_sarkar_parallel_time_known;
    Alcotest.test_case "Sarkar + LLB" `Quick test_sarkar_llb;
    Alcotest.test_case "DSC on fig1" `Quick test_dsc_fig1;
    Alcotest.test_case "DSC on a chain" `Quick test_dsc_chain_single_cluster;
    Alcotest.test_case "DSC on independent tasks" `Quick test_dsc_independent_tasks;
    Alcotest.test_case "DSC-LLB validity + cluster integrity" `Quick
      test_dsc_llb_valid_and_clustered;
    Alcotest.test_case "DSC-LLB priorities" `Quick test_dsc_llb_both_priorities;
    Alcotest.test_case "extensions on fig1" `Quick test_extensions_fig1;
    Alcotest.test_case "ISH fills gaps" `Quick test_ish_uses_gaps;
    Alcotest.test_case "serial baseline" `Quick test_serial_baseline;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
