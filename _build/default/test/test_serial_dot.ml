open! Flb_taskgraph
open Testutil

let graphs_equal a b =
  Taskgraph.num_tasks a = Taskgraph.num_tasks b
  && Taskgraph.num_edges a = Taskgraph.num_edges b
  && List.for_all
       (fun t -> Taskgraph.comp a t = Taskgraph.comp b t)
       (List.init (Taskgraph.num_tasks a) Fun.id)
  &&
  let ok = ref true in
  Taskgraph.iter_edges
    (fun s d w -> if Taskgraph.comm b ~src:s ~dst:d <> Some w then ok := false)
    a;
  !ok

let test_round_trip_small () =
  let g = small_graph () in
  let g' = Serial.of_string (Serial.to_string g) in
  check_bool "round trip" true (graphs_equal g g')

let test_parse_minimal () =
  let g =
    Serial.of_string
      "# comment\n\ntasks 2\ntask 0 1.5\ntask 1 2 # trailing comment\nedge 0 1 0.5\n"
  in
  check_int "tasks" 2 (Taskgraph.num_tasks g);
  check_float "comp 0" 1.5 (Taskgraph.comp g 0);
  Alcotest.(check (option (float 0.))) "edge" (Some 0.5) (Taskgraph.comm g ~src:0 ~dst:1)

let expect_parse_error input =
  match Serial.of_string input with
  | exception Serial.Parse_error _ -> ()
  | _ -> Alcotest.failf "accepted malformed input: %s" (String.escaped input)

let test_parse_errors () =
  expect_parse_error "";
  expect_parse_error "task 0 1\n";
  expect_parse_error "tasks 1\n";
  expect_parse_error "tasks 1\ntask 0 1\ntask 0 2\n";
  expect_parse_error "tasks 1\ntask 3 1\n";
  expect_parse_error "tasks 2\ntask 0 1\ntask 1 1\nedge 0 5 1\n";
  expect_parse_error "tasks 2\ntask 0 1\ntask 1 1\nedge 0 1 oops\n";
  expect_parse_error "tasks 2\ntask 0 1\ntask 1 1\nbogus 1 2\n";
  expect_parse_error "tasks -1\n";
  (* a cycle is reported as a parse error too *)
  expect_parse_error "tasks 2\ntask 0 1\ntask 1 1\nedge 0 1 1\nedge 1 0 1\n"

let test_error_carries_line () =
  match Serial.of_string "tasks 1\ntask 0 1\nwat\n" with
  | exception Serial.Parse_error { line; _ } -> check_int "line" 3 line
  | _ -> Alcotest.fail "accepted bad directive"

let test_file_io () =
  let g = Example.fig1 () in
  let path = Filename.temp_file "flb_test" ".tg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save g ~path;
      let g' = Serial.load ~path in
      check_bool "file round trip" true (graphs_equal g g'))

let test_dot () =
  let g = small_graph () in
  let dot = Dot.to_string g in
  check_bool "digraph" true (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
    loop 0
  in
  check_bool "edge rendered" true (contains "t0 -> t2" dot);
  check_bool "label rendered" true (contains "label=\"4\"" dot);
  let colored =
    Dot.to_string_with_placement g ~proc_of:(fun t -> t mod 2)
  in
  check_bool "fill colors" true (contains "fillcolor" colored)

let qsuite =
  [
    qtest ~count:100 "serialization round-trips random graphs" arb_dag_params
      (fun p ->
        let g = build_dag p in
        graphs_equal g (Serial.of_string (Serial.to_string g)));
  ]

let suite =
  [
    Alcotest.test_case "round trip (small)" `Quick test_round_trip_small;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_carries_line;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "dot export" `Quick test_dot;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
