open! Flb_taskgraph
open! Flb_platform
open! Flb_duplication
open Testutil

let machine p = Machine.clique ~num_procs:p

(* --- Dup_schedule --- *)

let test_place_basic () =
  let g = small_graph () in
  let s = Dup_schedule.create g (machine 2) in
  check_bool "t0 ready" true (Dup_schedule.is_ready s 0);
  check_bool "t1 not ready" false (Dup_schedule.is_ready s 1);
  let c = Dup_schedule.place s 0 ~proc:0 ~start:0.0 in
  check_float "finish" 2.0 c.Dup_schedule.finish;
  check_float "prt" 2.0 (Dup_schedule.prt s 0);
  check_bool "has copy" true (Dup_schedule.has_copy s 0);
  (* duplicate t0 on the other processor *)
  ignore (Dup_schedule.place s 0 ~proc:1 ~start:0.0);
  check_int "two copies" 2 (List.length (Dup_schedule.copies s 0));
  check_int "copies placed" 2 (Dup_schedule.copies_placed s);
  check_bool "copy on both procs" true
    (Dup_schedule.has_copy_on s 0 ~proc:0 && Dup_schedule.has_copy_on s 0 ~proc:1)

let test_place_errors () =
  let g = small_graph () in
  let s = Dup_schedule.create g (machine 2) in
  check_raises_invalid "pred unplaced" (fun () ->
      ignore (Dup_schedule.place s 1 ~proc:0 ~start:0.0));
  ignore (Dup_schedule.place s 0 ~proc:0 ~start:0.0);
  check_raises_invalid "same proc twice" (fun () ->
      ignore (Dup_schedule.place s 0 ~proc:0 ~start:5.0));
  check_raises_invalid "bad proc" (fun () ->
      ignore (Dup_schedule.place s 0 ~proc:7 ~start:0.0));
  check_raises_invalid "negative start" (fun () ->
      ignore (Dup_schedule.place s 1 ~proc:0 ~start:(-1.0)))

let test_data_ready_uses_best_copy () =
  let g = small_graph () in
  let s = Dup_schedule.create g (machine 2) in
  ignore (Dup_schedule.place s 0 ~proc:0 ~start:0.0);
  (* On p1, t2's message from t0 costs 4: arrival 6. *)
  check_float "remote arrival" 6.0 (Dup_schedule.data_ready s 2 ~proc:1);
  (* After duplicating t0 on p1 (finish 4), the local copy wins: 4. *)
  ignore (Dup_schedule.place s 0 ~proc:1 ~start:2.0);
  check_float "local copy wins" 4.0 (Dup_schedule.data_ready s 2 ~proc:1);
  Alcotest.(check (option int)) "critical pred of t3 unplaced inputs" None
    (Dup_schedule.critical_pred s 0 ~proc:0)

let test_validate_catches_bad_copy () =
  let g = small_graph () in
  let s = Dup_schedule.create g (machine 2) in
  ignore (Dup_schedule.place s 0 ~proc:0 ~start:0.0);
  (* t2 on p1 needs arrival 6 but starts at 3: invalid *)
  ignore (Dup_schedule.place s 2 ~proc:1 ~start:3.0);
  ignore (Dup_schedule.place s 1 ~proc:0 ~start:2.0);
  ignore (Dup_schedule.place s 3 ~proc:0 ~start:9.0);
  match Dup_schedule.validate s with
  | Ok () -> Alcotest.fail "invalid copy accepted"
  | Error _ -> ()

let test_validate_catches_missing () =
  let g = small_graph () in
  let s = Dup_schedule.create g (machine 2) in
  ignore (Dup_schedule.place s 0 ~proc:0 ~start:0.0);
  match Dup_schedule.validate s with
  | Ok () -> Alcotest.fail "incomplete accepted"
  | Error es -> check_int "three missing" 3 (List.length es)

(* --- DSH --- *)

let test_dsh_fig1 () =
  let g = Example.fig1 () in
  let s = Dsh.run g (machine 2) in
  (match Dup_schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "DSH invalid: %s" (String.concat "; " es));
  check_bool "no worse than FLB here" true
    (Dup_schedule.makespan s <= 14.0 +. 1e-9)

let test_dsh_broadcast_tree () =
  (* out-tree with very expensive messages: duplication collapses every
     path onto its leaf's processor, so the makespan approaches the
     computation-only depth, far below any non-duplicating schedule *)
  let structure = Flb_workloads.Shapes.out_tree ~branching:2 ~depth:3 in
  let g = Flb_workloads.Weights.scale_comm structure ~factor:10.0 in
  let m = machine 8 in
  let dsh = Dsh.run g m in
  (match Dup_schedule.validate dsh with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  let dup_len = Dup_schedule.makespan dsh in
  let flb_len = Flb_core.Flb.schedule_length g m in
  check_float "duplication achieves the computation depth" 4.0 dup_len;
  check_bool "strictly beats FLB on this graph" true (dup_len < flb_len);
  check_bool "placed extra copies" true
    (Dup_schedule.copies_placed dsh > Taskgraph.num_tasks g)

let test_dsh_chain_no_duplication_needed () =
  let g = Flb_workloads.Shapes.chain ~length:10 in
  let s = Dsh.run g (machine 4) in
  check_float "chain stays serial" 10.0 (Dup_schedule.makespan s);
  check_int "no extra copies" 10 (Dup_schedule.copies_placed s)

let test_dsh_budget_zero_disables_duplication () =
  let structure = Flb_workloads.Shapes.out_tree ~branching:2 ~depth:3 in
  let g = Flb_workloads.Weights.scale_comm structure ~factor:10.0 in
  let s = Dsh.run ~max_dups_per_task:0 g (machine 8) in
  (match Dup_schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  check_int "exactly one copy per task" (Taskgraph.num_tasks g)
    (Dup_schedule.copies_placed s)

(* --- CPFD --- *)

let test_cpfd_classify () =
  let g = Example.fig1 () in
  let classes = Cpfd.classify g in
  let path = Levels.critical_path g in
  List.iter
    (fun t -> check_bool (Printf.sprintf "t%d is CPN" t) true (classes.(t) = Cpfd.Cpn))
    path;
  (* every other task of fig1 is an ancestor of the exit CPN t7 *)
  for t = 0 to 7 do
    if not (List.mem t path) then
      check_bool (Printf.sprintf "t%d is IBN" t) true (classes.(t) = Cpfd.Ibn)
  done;
  (* a task unrelated to the critical path is an OBN *)
  let g2 =
    Flb_taskgraph.Taskgraph.of_arrays ~comp:[| 5.0; 5.0; 1.0 |]
      ~edges:[| (0, 1, 5.0) |]
  in
  let c2 = Cpfd.classify g2 in
  check_bool "isolated task is OBN" true (c2.(2) = Cpfd.Obn)

let test_cpfd_fig1 () =
  let g = Example.fig1 () in
  let s = Cpfd.run g (machine 2) in
  (match Dup_schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "CPFD invalid: %s" (String.concat "; " es));
  check_bool "competitive with FLB" true (Dup_schedule.makespan s <= 14.0 +. 1e-9)

let test_cpfd_broadcast_tree () =
  let structure = Flb_workloads.Shapes.out_tree ~branching:2 ~depth:3 in
  let g = Flb_workloads.Weights.scale_comm structure ~factor:10.0 in
  let s = Cpfd.run g (machine 8) in
  (match Dup_schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  check_float "collapses like DSH" 4.0 (Dup_schedule.makespan s)

let qsuite =
  [
    qtest ~count:100 "DSH schedules always validate" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        let s = Dsh.run g (machine procs) in
        Dup_schedule.validate s = Ok ());
    qtest ~count:100 "CPFD schedules always validate" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        let s = Cpfd.run g (machine procs) in
        Dup_schedule.validate s = Ok ());
    qtest ~count:100 "duplication budget only helps" arb_scheduling_case
      (fun (p, procs) ->
        (* with a zero budget DSH degenerates to plain HLFET-style list
           scheduling; the budgeted version must never be worse on the
           graphs where both are exact... it is a greedy heuristic, so we
           only require it not to be dramatically worse *)
        let g = build_dag p in
        let m = machine procs in
        let plain = Dsh.schedule_length ~max_dups_per_task:0 g m in
        let dup = Dsh.schedule_length g m in
        dup <= plain *. 1.5 +. 1e-9);
    qtest ~count:100 "copies bounded by V * (1 + budget)" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        let budget = 5 in
        let s = Dsh.run ~max_dups_per_task:budget g (machine procs) in
        let v = Taskgraph.num_tasks g in
        Dup_schedule.copies_placed s <= v * (1 + budget));
  ]

let suite =
  [
    Alcotest.test_case "place basics" `Quick test_place_basic;
    Alcotest.test_case "place errors" `Quick test_place_errors;
    Alcotest.test_case "data_ready uses best copy" `Quick test_data_ready_uses_best_copy;
    Alcotest.test_case "validate: infeasible copy" `Quick test_validate_catches_bad_copy;
    Alcotest.test_case "validate: missing tasks" `Quick test_validate_catches_missing;
    Alcotest.test_case "DSH on fig1" `Quick test_dsh_fig1;
    Alcotest.test_case "DSH on a broadcast tree" `Quick test_dsh_broadcast_tree;
    Alcotest.test_case "DSH on a chain" `Quick test_dsh_chain_no_duplication_needed;
    Alcotest.test_case "DSH with zero budget" `Quick test_dsh_budget_zero_disables_duplication;
    Alcotest.test_case "CPFD classification" `Quick test_cpfd_classify;
    Alcotest.test_case "CPFD on fig1" `Quick test_cpfd_fig1;
    Alcotest.test_case "CPFD on a broadcast tree" `Quick test_cpfd_broadcast_tree;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
