open! Flb_taskgraph
open Testutil

(* --- Topo --- *)

let test_order_small () =
  let g = small_graph () in
  let o = Topo.order g in
  check_bool "topological" true (Topo.is_topological g o);
  check_int "covers all" 4 (Array.length o);
  check_int "starts at entry" 0 o.(0)

let test_is_topological_rejects () =
  let g = small_graph () in
  check_bool "reversed order rejected" false (Topo.is_topological g [| 3; 2; 1; 0 |]);
  check_bool "wrong length rejected" false (Topo.is_topological g [| 0; 1 |]);
  check_bool "non-permutation rejected" false (Topo.is_topological g [| 0; 0; 1; 2 |])

let test_depth_levels () =
  let g = small_graph () in
  Alcotest.(check (array int)) "depths" [| 0; 1; 1; 2 |] (Topo.depth g);
  check_int "num levels" 3 (Topo.num_levels g);
  let levels = Topo.level_members g in
  Alcotest.(check (list int)) "level 1" [ 1; 2 ] levels.(1)

let test_reachable () =
  let g = small_graph () in
  let closure = Topo.reachable g in
  check_bool "0 reaches 3" true (Flb_prelude.Bitset.mem closure.(0) 3);
  check_bool "3 reaches nothing" true (Flb_prelude.Bitset.is_empty closure.(3));
  check_bool "1 and 2 unconnected" false (Topo.connected closure 1 2);
  check_bool "0 and 3 connected" true (Topo.connected closure 0 3)

(* --- Levels, exercised against the paper's Fig. 1 where every value is
   known from the Table 1 trace --- *)

let test_fig1_blevels () =
  let g = Example.fig1 () in
  let b = Levels.blevel g in
  Array.iteri
    (fun t expected -> check_float (Printf.sprintf "blevel t%d" t) expected b.(t))
    Example.fig1_blevels

let test_fig1_cp () =
  let g = Example.fig1 () in
  check_float "cp length" 15.0 (Levels.cp_length g);
  let path = Levels.critical_path g in
  check_bool "path starts at entry" true (Taskgraph.is_entry g (List.hd path));
  check_bool "path ends at exit" true
    (Taskgraph.is_exit g (List.nth path (List.length path - 1)));
  (* walk the path and accumulate its length; must equal cp_length *)
  let rec length = function
    | [] -> 0.0
    | [ t ] -> Taskgraph.comp g t
    | t :: (u :: _ as rest) ->
      let w =
        match Taskgraph.comm g ~src:t ~dst:u with
        | Some w -> w
        | None -> Alcotest.failf "critical path uses non-edge %d->%d" t u
      in
      Taskgraph.comp g t +. w +. length rest
  in
  check_float "path length = cp" 15.0 (length path)

let test_fig1_alap () =
  let g = Example.fig1 () in
  let alap = Levels.alap g in
  check_float "alap of t0" 0.0 alap.(0);
  check_float "alap of t7" 13.0 alap.(7);
  check_float "alap of t3" 3.0 alap.(3)

let test_tlevel_small () =
  let g = small_graph () in
  let tl = Levels.tlevel g in
  check_float "entry tlevel" 0.0 tl.(0);
  check_float "tlevel b" 3.0 tl.(1);
  check_float "tlevel c" 6.0 tl.(2);
  (* via c: 6 + 1 + 1 = 8; via b: 3 + 3 + 2 = 8 *)
  check_float "tlevel d" 8.0 tl.(3)

let test_blevel_comp_only () =
  let g = small_graph () in
  let s = Levels.blevel_comp_only g in
  check_float "exit" 1.0 s.(3);
  check_float "b" 4.0 s.(1);
  check_float "c" 2.0 s.(2);
  check_float "a" 6.0 s.(0)

let qsuite =
  [
    qtest "order is always topological" arb_dag_params (fun p ->
        let g = build_dag p in
        Topo.is_topological g (Topo.order g));
    qtest "depth increases along edges" arb_dag_params (fun p ->
        let g = build_dag p in
        let d = Topo.depth g in
        let ok = ref true in
        Taskgraph.iter_edges (fun u v _ -> if d.(v) <= d.(u) then ok := false) g;
        !ok);
    qtest "levels partition tasks into antichains" arb_dag_params (fun p ->
        let g = build_dag p in
        let closure = Topo.reachable g in
        let total = ref 0 in
        let ok = ref true in
        Array.iter
          (fun members ->
            total := !total + List.length members;
            List.iter
              (fun a ->
                List.iter
                  (fun b -> if a < b && Topo.connected closure a b then ok := false)
                  members)
              members)
          (Topo.level_members g);
        !ok && !total = Taskgraph.num_tasks g);
    qtest "tlevel + blevel bounded by cp everywhere, tight somewhere"
      arb_dag_params (fun p ->
        let g = build_dag p in
        let tl = Levels.tlevel g and bl = Levels.blevel g in
        let cp = Levels.cp_length g in
        let tight = ref false and ok = ref true in
        Array.iteri
          (fun t tlv ->
            let s = tlv +. bl.(t) in
            if s > cp +. 1e-9 then ok := false;
            if Float.abs (s -. cp) < 1e-9 then tight := true)
          tl;
        !ok && !tight);
    qtest "alap is non-negative and zero on some entry" arb_dag_params (fun p ->
        let g = build_dag p in
        let alap = Levels.alap g in
        Array.for_all (fun a -> a >= -1e-9) alap
        && Array.exists (fun a -> Float.abs a < 1e-9) alap);
  ]

let suite =
  [
    Alcotest.test_case "topo order (small)" `Quick test_order_small;
    Alcotest.test_case "is_topological rejects" `Quick test_is_topological_rejects;
    Alcotest.test_case "depth and levels" `Quick test_depth_levels;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "fig1 bottom levels" `Quick test_fig1_blevels;
    Alcotest.test_case "fig1 critical path" `Quick test_fig1_cp;
    Alcotest.test_case "fig1 ALAP" `Quick test_fig1_alap;
    Alcotest.test_case "tlevel (small)" `Quick test_tlevel_small;
    Alcotest.test_case "computation-only blevel" `Quick test_blevel_comp_only;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
