open! Flb_prelude
open Testutil

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check_int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check_int "get" (i * i) (Vec.get v i)
  done

let test_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check_raises_invalid "get -1" (fun () -> Vec.get v (-1));
  check_raises_invalid "get len" (fun () -> Vec.get v 3);
  check_raises_invalid "set len" (fun () -> Vec.set v 3 0)

let test_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "last" (Some 3) (Vec.last v);
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  Alcotest.(check (option int)) "pop" (Some 2) (Vec.pop v);
  check_int "length" 1 (Vec.length v);
  ignore (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v);
  Alcotest.(check (option int)) "last empty" None (Vec.last v)

let test_clear_reuse () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.clear v;
  check_bool "empty after clear" true (Vec.is_empty v);
  Vec.push v 7;
  check_int "reusable" 7 (Vec.get v 0)

let test_set () =
  let v = Vec.make 5 0 in
  Vec.set v 2 42;
  check_int "set/get" 42 (Vec.get v 2);
  check_int "others untouched" 0 (Vec.get v 1)

let test_iterators () =
  let v = Vec.of_list [ 3; 1; 4; 1; 5 ] in
  let sum = Vec.fold_left ( + ) 0 v in
  check_int "fold" 14 sum;
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check_int "iteri count" 5 (List.length !seen);
  check_bool "exists" true (Vec.exists (fun x -> x = 4) v);
  check_bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  check_bool "for_all" true (Vec.for_all (fun x -> x > 0) v);
  Alcotest.(check (list int)) "map" [ 6; 2; 8; 2; 10 ] (Vec.to_list (Vec.map (fun x -> 2 * x) v))

let test_sort () =
  let v = Vec.of_list [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 6; 9 ] (Vec.to_list v)

let qsuite =
  [
    qtest "to_list after pushes round-trips" QCheck.(list int) (fun l ->
        let v = Vec.create () in
        List.iter (Vec.push v) l;
        Vec.to_list v = l);
    qtest "of_array/to_array round-trips" QCheck.(array int) (fun a ->
        Vec.to_array (Vec.of_array a) = a);
    qtest "push then pop-all reverses" QCheck.(list int) (fun l ->
        let v = Vec.of_list l in
        let rec drain acc = match Vec.pop v with None -> acc | Some x -> drain (x :: acc) in
        drain [] = l);
  ]

let suite =
  [
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "bounds checks" `Quick test_bounds;
    Alcotest.test_case "pop/last" `Quick test_pop_last;
    Alcotest.test_case "clear and reuse" `Quick test_clear_reuse;
    Alcotest.test_case "set" `Quick test_set;
    Alcotest.test_case "iterators" `Quick test_iterators;
    Alcotest.test_case "sort" `Quick test_sort;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
