(* Exhaustive verification on all small DAGs.

   Random testing can miss thin corners; here we enumerate EVERY dag on
   four nodes (all 2^6 upper-triangular adjacency patterns — every DAG
   shape on 4 vertices appears among them up to relabeling) under several
   weight patterns and machine sizes, and check the load-bearing
   invariants on each: Theorem 3, schedule validity for every algorithm,
   exact simulator replay, and the width/profile relations. About 4600
   graph-machine combinations per invariant. *)

open! Flb_taskgraph
open! Flb_platform
open! Testutil

let nodes = 4

(* weight patterns: (comp of task i, comm of edge k) *)
let weight_patterns =
  [
    ("unit", (fun _ -> 1.0), fun _ -> 1.0);
    ("heavy-comm", (fun _ -> 1.0), fun k -> float_of_int ((k mod 3) * 4));
    ("mixed", (fun i -> float_of_int ((i mod 3) + 1)), fun k -> float_of_int (k mod 4));
    ("zeros", (fun i -> if i mod 2 = 0 then 0.0 else 2.0), fun k -> float_of_int (k mod 2));
  ]

let all_dags comp_of comm_of =
  (* bitmask over the 6 possible forward edges (i, j), i < j *)
  let pairs =
    List.concat_map
      (fun i -> List.init (nodes - 1 - i) (fun d -> (i, i + 1 + d)))
      (List.init (nodes - 1) Fun.id)
  in
  List.init (1 lsl List.length pairs) (fun mask ->
      let edges = ref [] in
      List.iteri
        (fun k (i, j) ->
          if mask land (1 lsl k) <> 0 then edges := (i, j, comm_of k) :: !edges)
        pairs;
      Taskgraph.of_arrays
        ~comp:(Array.init nodes comp_of)
        ~edges:(Array.of_list (List.rev !edges)))

let for_all_cases f =
  List.iter
    (fun (pname, comp_of, comm_of) ->
      List.iteri
        (fun mask g ->
          List.iter
            (fun procs -> f ~context:(Printf.sprintf "%s/mask=%d/P=%d" pname mask procs)
                 g (Machine.clique ~num_procs:procs))
            [ 1; 2; 3 ])
        (all_dags comp_of comm_of))
    weight_patterns

let test_theorem3_everywhere () =
  for_all_cases (fun ~context g m ->
      match Flb_core.Flb_check.run_checked g m with
      | Ok _ -> ()
      | Error vs ->
        Alcotest.failf "%s: Theorem 3 violated (%s)" context
          (Format.asprintf "%a" Flb_core.Flb_check.pp_violation (List.hd vs)))

let test_all_schedulers_everywhere () =
  for_all_cases (fun ~context g m ->
      List.iter
        (fun (a : Flb_experiments.Registry.t) ->
          let s = a.run g m in
          match Schedule.validate s with
          | Ok () -> ()
          | Error es ->
            Alcotest.failf "%s: %s invalid (%s)" context a.name (List.hd es))
        Flb_experiments.Registry.paper_set)

let test_simulator_everywhere () =
  for_all_cases (fun ~context g m ->
      let s = Flb_core.Flb.run g m in
      match Flb_sim.Simulator.run s with
      | Ok o ->
        if not (Flb_sim.Simulator.agrees_with_schedule s o) then
          Alcotest.failf "%s: simulator disagrees" context
      | Error _ -> Alcotest.failf "%s: replay failed" context)

let test_duplication_everywhere () =
  for_all_cases (fun ~context g m ->
      match Flb_duplication.Dup_schedule.validate (Flb_duplication.Dsh.run g m) with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: DSH invalid (%s)" context (List.hd es))

let test_structure_relations_everywhere () =
  (* width/profile/bounds relations on every structure (weights: unit) *)
  List.iteri
    (fun mask g ->
      let context = Printf.sprintf "mask=%d" mask in
      let w = Width.exact g in
      if Width.max_level_width g > w then
        Alcotest.failf "%s: level width exceeds exact width" context;
      if Width.max_ready_bound g > w then
        Alcotest.failf "%s: ready bound exceeds exact width" context;
      if Profile.peak_parallelism g <> Width.max_ready_bound g then
        Alcotest.failf "%s: profile peak <> ready bound" context;
      let len = Flb_core.Flb.schedule_length g (Machine.clique ~num_procs:2) in
      if len < Lower_bounds.best g ~procs:2 -. 1e-9 then
        Alcotest.failf "%s: schedule beats the lower bound" context)
    (all_dags (fun _ -> 1.0) (fun _ -> 1.0))

let suite =
  [
    Alcotest.test_case "Theorem 3 on all 4-node DAGs" `Quick test_theorem3_everywhere;
    Alcotest.test_case "all schedulers on all 4-node DAGs" `Quick
      test_all_schedulers_everywhere;
    Alcotest.test_case "simulator on all 4-node DAGs" `Quick test_simulator_everywhere;
    Alcotest.test_case "DSH on all 4-node DAGs" `Quick test_duplication_everywhere;
    Alcotest.test_case "structural relations on all 4-node DAGs" `Quick
      test_structure_relations_everywhere;
  ]
