open! Flb_prelude
open Testutil

let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () = check_float "mean" 5.0 (Stats.mean data)

let test_variance () =
  (* population variance of this classic data set is 4; sample (n-1)
     variance is 32/7 *)
  check_floatish "variance" (32.0 /. 7.0) (Stats.variance data);
  check_float "singleton variance" 0.0 (Stats.variance [| 3.0 |])

let test_min_max_median () =
  check_float "min" 2.0 (Stats.min data);
  check_float "max" 9.0 (Stats.max data);
  check_float "median" 4.5 (Stats.median data)

let test_quantile () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "q0" 1.0 (Stats.quantile a ~q:0.0);
  check_float "q1" 4.0 (Stats.quantile a ~q:1.0);
  check_float "q0.5 interpolates" 2.5 (Stats.quantile a ~q:0.5);
  check_raises_invalid "q out of range" (fun () -> Stats.quantile a ~q:1.5)

let test_geometric_mean () =
  check_floatish "gmean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  check_raises_invalid "non-positive" (fun () -> Stats.geometric_mean [| 1.0; 0.0 |])

let test_empty_errors () =
  check_raises_invalid "mean of empty" (fun () -> Stats.mean [||]);
  check_raises_invalid "min of empty" (fun () -> Stats.min [||])

let test_summary () =
  let s = Stats.summarize data in
  check_int "n" 8 s.Stats.n;
  check_float "mean" 5.0 s.Stats.mean;
  check_float "min" 2.0 s.Stats.min;
  check_float "max" 9.0 s.Stats.max

let test_pp () =
  let text = Format.asprintf "%a" Stats.pp_summary (Stats.summarize data) in
  check_bool "renders fields" true
    (String.length text > 10
    && String.split_on_char '=' text |> List.length >= 6)

let test_cov () =
  (* constant data: stddev 0 *)
  check_float "cov of constant" 0.0 (Stats.coefficient_of_variation [| 5.0; 5.0 |]);
  check_raises_invalid "zero mean" (fun () ->
      Stats.coefficient_of_variation [| 1.0; -1.0 |])

let qsuite =
  let nonempty = QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.)) in
  [
    qtest "accumulator matches batch mean/variance" nonempty (fun l ->
        let a = Array.of_list l in
        let acc = Stats.Accumulator.create () in
        Array.iter (Stats.Accumulator.add acc) a;
        Float.abs (Stats.Accumulator.mean acc -. Stats.mean a) < 1e-6
        && Float.abs (Stats.Accumulator.variance acc -. Stats.variance a) < 1e-4);
    qtest "min <= median <= max" nonempty (fun l ->
        let a = Array.of_list l in
        Stats.min a <= Stats.median a && Stats.median a <= Stats.max a);
    qtest "mean within [min, max]" nonempty (fun l ->
        let a = Array.of_list l in
        Stats.min a -. 1e-9 <= Stats.mean a && Stats.mean a <= Stats.max a +. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "min/max/median" `Quick test_min_max_median;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "empty input errors" `Quick test_empty_errors;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "coefficient of variation" `Quick test_cov;
    Alcotest.test_case "summary printer" `Quick test_pp;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
