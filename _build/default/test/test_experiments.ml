open Testutil
module E = Flb_experiments

let small_suite () = E.Workload_suite.fig4_suite ~tasks:120 ()

let test_registry () =
  check_int "paper set has five" 5 (List.length E.Registry.paper_set);
  Alcotest.(check (list string)) "paper order"
    [ "MCP"; "ETF"; "DSC-LLB"; "FCP"; "FLB" ]
    (E.Registry.names E.Registry.paper_set);
  check_bool "find is case-insensitive" true
    (match E.Registry.find "flb" with Some a -> a.E.Registry.name = "FLB" | None -> false);
  check_bool "find unknown" true (E.Registry.find "nope" = None)

let test_workload_suite () =
  let suite = E.Workload_suite.fig3_suite ~tasks:2000 () in
  Alcotest.(check (list string)) "fig3 workloads"
    [ "LU"; "Laplace"; "Stencil"; "FFT" ]
    (List.map (fun w -> w.E.Workload_suite.name) suite);
  List.iter
    (fun w ->
      let v = Flb_taskgraph.Taskgraph.num_tasks w.E.Workload_suite.structure in
      check_bool
        (Printf.sprintf "%s sized near 2000 (%d)" w.E.Workload_suite.name v)
        true
        (v >= 1900 && v <= 2400))
    suite

let test_instance_determinism () =
  let w = E.Workload_suite.stencil ~tasks:100 () in
  let a = E.Workload_suite.instance w ~ccr:1.0 ~seed:4 in
  let b = E.Workload_suite.instance w ~ccr:1.0 ~seed:4 in
  let c = E.Workload_suite.instance w ~ccr:1.0 ~seed:5 in
  check_float "same seed same weights" (Flb_taskgraph.Taskgraph.comp a 0)
    (Flb_taskgraph.Taskgraph.comp b 0);
  check_bool "different seed different weights" true
    (Flb_taskgraph.Taskgraph.comp a 0 <> Flb_taskgraph.Taskgraph.comp c 0)

let test_nsl_mcp_is_one () =
  let cells =
    E.Nsl_exp.run ~suite:(small_suite ()) ~procs:[ 2; 4 ] ~instances_per_cell:2 ()
  in
  check_bool "cells produced" true (List.length cells > 0);
  List.iter
    (fun c ->
      if c.E.Nsl_exp.algorithm = "MCP" then
        check_float "MCP NSL is 1 by construction" 1.0 c.E.Nsl_exp.nsl_mean)
    cells;
  List.iter
    (fun c ->
      check_bool "NSL positive and sane" true
        (c.E.Nsl_exp.nsl_mean > 0.3 && c.E.Nsl_exp.nsl_mean < 5.0))
    cells

let test_nsl_parallel_equals_sequential () =
  let suite = [ E.Workload_suite.stencil ~tasks:80 () ] in
  let seq = E.Nsl_exp.run ~suite ~procs:[ 2; 4 ] ~instances_per_cell:2 () in
  let par =
    E.Nsl_exp.run ~domains:4 ~suite ~procs:[ 2; 4 ] ~instances_per_cell:2 ()
  in
  check_int "same cell count" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      check_bool "identical cells" true
        (a.E.Nsl_exp.workload = b.E.Nsl_exp.workload
        && a.E.Nsl_exp.algorithm = b.E.Nsl_exp.algorithm
        && a.E.Nsl_exp.procs = b.E.Nsl_exp.procs
        && a.E.Nsl_exp.nsl_mean = b.E.Nsl_exp.nsl_mean))
    seq par

let test_nsl_render_and_csv () =
  let cells =
    E.Nsl_exp.run
      ~suite:[ E.Workload_suite.stencil ~tasks:80 () ]
      ~procs:[ 2 ] ~instances_per_cell:2 ()
  in
  let text = E.Nsl_exp.render cells in
  check_bool "render nonempty" true (String.length text > 0);
  let csv = E.Nsl_exp.to_csv cells in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check_int "csv rows = cells + header" (List.length cells + 1) (List.length lines)

let test_speedup_monotone_scale () =
  let cells =
    E.Speedup_exp.run
      ~suite:[ E.Workload_suite.stencil ~tasks:150 () ]
      ~ccrs:[ 0.2 ] ~procs:[ 1; 4; 16 ] ~instances_per_cell:2 ()
  in
  let find p =
    match List.find_opt (fun c -> c.E.Speedup_exp.procs = p) cells with
    | Some c -> c.E.Speedup_exp.speedup_mean
    | None -> Alcotest.failf "missing P=%d" p
  in
  check_bool "P=1 speedup near 1" true (Float.abs (find 1 -. 1.0) < 1e-6);
  check_bool "more processors help a regular coarse graph" true (find 16 > find 4 *. 0.9);
  check_bool "speedup below P" true (find 16 <= 16.0 +. 1e-9)

let test_speedup_render () =
  let cells =
    E.Speedup_exp.run
      ~suite:[ E.Workload_suite.fft ~tasks:64 () ]
      ~ccrs:[ 1.0 ] ~procs:[ 1; 2 ] ~instances_per_cell:1 ()
  in
  check_bool "render nonempty" true (String.length (E.Speedup_exp.render cells) > 0);
  check_bool "csv has header" true
    (String.length (E.Speedup_exp.to_csv cells) > 30)

let test_runtime_exp_smoke () =
  let cells =
    E.Runtime_exp.run
      ~algorithms:[ E.Registry.flb; E.Registry.fcp ]
      ~suite:[ E.Workload_suite.stencil ~tasks:100 () ]
      ~ccrs:[ 1.0 ] ~procs:[ 2 ] ~repeats:1 ~instances_per_cell:1 ()
  in
  check_int "two cells" 2 (List.length cells);
  List.iter
    (fun c -> check_bool "time measured" true (c.E.Runtime_exp.seconds >= 0.0))
    cells;
  check_bool "render nonempty" true (String.length (E.Runtime_exp.render cells) > 0)

let test_random_suite () =
  let suite = E.Workload_suite.random_suite ~tasks:200 () in
  check_int "six workloads" 6 (List.length suite);
  List.iter
    (fun w ->
      let v = Flb_taskgraph.Taskgraph.num_tasks w.E.Workload_suite.structure in
      check_bool
        (Printf.sprintf "%s has tasks (%d)" w.E.Workload_suite.name v)
        true (v >= 100))
    suite

let test_complexity_exp_smoke () =
  let cells =
    E.Complexity_exp.run ~sizes:[ 100 ] ~procs:[ 2 ] ~repeats:1 ()
  in
  check_int "three algorithms" 3 (List.length cells);
  (match List.find_opt (fun c -> c.E.Complexity_exp.algorithm = "FLB") cells with
  | Some c ->
    check_bool "ops counted" true (c.E.Complexity_exp.task_queue_ops_per_task > 0.0);
    check_bool "peak ready recorded" true (c.E.Complexity_exp.peak_ready > 0)
  | None -> Alcotest.fail "no FLB cell");
  check_bool "render" true (String.length (E.Complexity_exp.render cells) > 0);
  check_bool "csv" true (String.length (E.Complexity_exp.to_csv cells) > 0)

let test_duplication_exp_smoke () =
  let cells = E.Duplication_exp.run ~ccrs:[ 2.0 ] ~procs:[ 4 ] ~tasks:60 () in
  check_bool "cells" true (List.length cells > 0);
  List.iter
    (fun c ->
      if c.E.Duplication_exp.algorithm = "DSH" then
        check_bool "DSH counted copies" true (c.E.Duplication_exp.copies > 0))
    cells;
  check_bool "render" true (String.length (E.Duplication_exp.render cells) > 0)

let test_granularity_exp_smoke () =
  let cells = E.Granularity_exp.run ~procs:4 ~ccrs:[ 1.0 ] ~grains:[ 1.0; infinity ] () in
  check_bool "cells" true (List.length cells > 0);
  (* unlimited merging never increases the task count *)
  let by_key = Hashtbl.create 8 in
  List.iter
    (fun c ->
      Hashtbl.replace by_key
        (c.E.Granularity_exp.workload, c.E.Granularity_exp.max_grain)
        c.E.Granularity_exp.coarse_tasks)
    cells;
  Hashtbl.iter
    (fun (w, grain) v ->
      if grain = infinity then
        match Hashtbl.find_opt by_key (w, 1.0) with
        | Some fine -> check_bool "coarser or equal" true (v <= fine)
        | None -> ())
    by_key;
  check_bool "render" true (String.length (E.Granularity_exp.render cells) > 0)

let test_contention_exp_smoke () =
  let cells =
    E.Contention_exp.run
      ~suite:[ E.Workload_suite.stencil ~tasks:100 () ]
      ~ccrs:[ 2.0 ] ~procs:[ 4 ] ()
  in
  check_int "two algorithms" 2 (List.length cells);
  List.iter
    (fun c ->
      check_float "free replay equals analytic" c.E.Contention_exp.analytic
        c.E.Contention_exp.sim_unlimited;
      check_bool "ports only slow down" true
        (c.E.Contention_exp.sim_one_port >= c.E.Contention_exp.sim_two_ports -. 1e-9
        && c.E.Contention_exp.sim_two_ports >= c.E.Contention_exp.analytic -. 1e-9))
    cells;
  check_bool "render" true (String.length (E.Contention_exp.render cells) > 0)

let test_table () =
  let t = E.Table.create ~header:[ "a"; "bb" ] in
  E.Table.add_row t [ "1"; "2" ];
  E.Table.add_separator t;
  E.Table.add_row t [ "333"; "4" ];
  check_raises_invalid "bad width" (fun () -> E.Table.add_row t [ "x" ]);
  let out = E.Table.render t in
  check_bool "contains header" true (String.length out > 0);
  Alcotest.(check string) "float cell" "1.23" (E.Table.cell_float 1.2345);
  Alcotest.(check string) "float cell decimals" "1.2345"
    (E.Table.cell_float ~decimals:4 1.2345)

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "workload suite" `Quick test_workload_suite;
    Alcotest.test_case "instance determinism" `Quick test_instance_determinism;
    Alcotest.test_case "NSL: MCP is the unit" `Quick test_nsl_mcp_is_one;
    Alcotest.test_case "NSL render and csv" `Quick test_nsl_render_and_csv;
    Alcotest.test_case "NSL parallel = sequential" `Quick
      test_nsl_parallel_equals_sequential;
    Alcotest.test_case "speedup scales" `Quick test_speedup_monotone_scale;
    Alcotest.test_case "speedup render" `Quick test_speedup_render;
    Alcotest.test_case "runtime experiment smoke" `Quick test_runtime_exp_smoke;
    Alcotest.test_case "random suite" `Quick test_random_suite;
    Alcotest.test_case "complexity experiment smoke" `Quick test_complexity_exp_smoke;
    Alcotest.test_case "duplication experiment smoke" `Quick test_duplication_exp_smoke;
    Alcotest.test_case "granularity experiment smoke" `Quick test_granularity_exp_smoke;
    Alcotest.test_case "contention experiment smoke" `Quick test_contention_exp_smoke;
    Alcotest.test_case "table" `Quick test_table;
  ]
