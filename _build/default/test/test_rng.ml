open! Flb_prelude
open Testutil

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing one must not affect the other *)
  let before = Rng.bits64 b in
  ignore (Rng.bits64 a);
  let b2 = Rng.copy b in
  ignore before;
  Alcotest.(check int64) "copies stay in sync" (Rng.bits64 b) (Rng.bits64 b2)

let test_split_independent () =
  let a = Rng.create ~seed:3 in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check_bool "split stream differs from parent" true !differs

let test_int_errors () =
  let g = Rng.create ~seed:0 in
  check_raises_invalid "bound 0" (fun () -> Rng.int g 0);
  check_raises_invalid "negative bound" (fun () -> Rng.int g (-3));
  check_raises_invalid "empty range" (fun () -> Rng.int_in g ~lo:5 ~hi:4);
  check_raises_invalid "empty choose" (fun () -> Rng.choose g [||])

let test_exponential_mean () =
  let g = Rng.create ~seed:9 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential g ~mean:3.0 in
    check_bool "non-negative" true (x >= 0.0);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_bernoulli () =
  let g = Rng.create ~seed:13 in
  let hits = ref 0 in
  let n = 10000 in
  for _ = 1 to n do
    if Rng.bernoulli g ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03);
  (* degenerate probabilities *)
  check_bool "p=0 never" false (Rng.bernoulli g ~p:0.0);
  check_bool "p=1 always" true (Rng.bernoulli g ~p:1.0)

let test_shuffle_permutation () =
  let g = Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_parallel_map () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "sequential fallback" (List.map (fun x -> x * x) xs)
    (Parallel.map (fun x -> x * x) xs);
  Alcotest.(check (list int)) "parallel equals sequential"
    (List.map (fun x -> x * x) xs)
    (Parallel.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "more domains than work" [ 1; 2 ]
    (Parallel.map ~domains:8 (fun x -> x) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty input" [] (Parallel.map ~domains:4 Fun.id []);
  check_bool "recommended at least 1" true (Parallel.recommended_domains () >= 1)

let test_parallel_map_exception () =
  match
    Parallel.map ~domains:3
      (fun x -> if x = 7 then failwith "boom" else x)
      (List.init 20 Fun.id)
  with
  | exception Failure m -> Alcotest.(check string) "propagated" "boom" m
  | _ -> Alcotest.fail "exception not propagated"

let qsuite =
  [
    qtest "parallel map equals List.map" QCheck.(pair (list int) (int_range 1 6))
      (fun (xs, domains) ->
        Parallel.map ~domains (fun x -> (2 * x) + 1) xs
        = List.map (fun x -> (2 * x) + 1) xs);
    qtest "int g b in [0, b)" QCheck.(pair (int_range 1 1000) small_int)
      (fun (bound, seed) ->
        let g = Rng.create ~seed in
        let v = Rng.int g bound in
        v >= 0 && v < bound);
    qtest "int_in within range" QCheck.(triple small_signed_int (int_range 0 100) small_int)
      (fun (lo, span, seed) ->
        let g = Rng.create ~seed in
        let v = Rng.int_in g ~lo ~hi:(lo + span) in
        v >= lo && v <= lo + span);
    qtest "float g b in [0, b)" QCheck.(pair (float_range 0.001 1e6) small_int)
      (fun (bound, seed) ->
        let g = Rng.create ~seed in
        let v = Rng.float g bound in
        v >= 0.0 && v < bound);
    qtest "uniform in [lo, hi)" QCheck.(pair (pair (float_range (-50.) 50.) (float_range 0.001 100.)) small_int)
      (fun ((lo, span), seed) ->
        let g = Rng.create ~seed in
        let v = Rng.uniform g ~lo ~hi:(lo +. span) in
        v >= lo && v < lo +. span);
  ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split" `Quick test_split_independent;
    Alcotest.test_case "argument errors" `Quick test_int_errors;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "parallel map" `Quick test_parallel_map;
    Alcotest.test_case "parallel map exceptions" `Quick test_parallel_map_exception;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
