open! Flb_taskgraph
open Testutil
module Shapes = Flb_workloads.Shapes

let test_known_widths () =
  check_int "chain" 1 (Width.exact (Shapes.chain ~length:10));
  check_int "independent" 12 (Width.exact (Shapes.independent ~tasks:12));
  check_int "diamond" 6 (Width.exact (Shapes.diamond ~size:6));
  check_int "fork-join" 5 (Width.exact (Shapes.fork_join ~branches:5 ~stages:3));
  check_int "fig1" 3 (Width.exact (Example.fig1 ()));
  check_int "empty" 0 (Width.exact (Taskgraph.of_arrays ~comp:[||] ~edges:[||]))

let test_out_tree_width () =
  (* complete binary out-tree of depth 3: 8 leaves *)
  check_int "out-tree leaves" 8 (Width.exact (Shapes.out_tree ~branching:2 ~depth:3));
  check_int "in-tree leaves" 8 (Width.exact (Shapes.in_tree ~branching:2 ~depth:3))

let test_level_width_known () =
  check_int "chain level width" 1 (Width.max_level_width (Shapes.chain ~length:5));
  check_int "fork-join level width" 5
    (Width.max_level_width (Shapes.fork_join ~branches:5 ~stages:2));
  check_int "diamond level width" 6 (Width.max_level_width (Shapes.diamond ~size:6))

let test_ready_bound_known () =
  check_int "independent ready bound" 9
    (Width.max_ready_bound (Shapes.independent ~tasks:9));
  check_int "chain ready bound" 1 (Width.max_ready_bound (Shapes.chain ~length:9))

let qsuite =
  [
    qtest ~count:100 "level width lower-bounds exact width" arb_dag_params (fun p ->
        let g = build_dag p in
        Width.max_level_width g <= Width.exact g);
    qtest ~count:100 "exact width bounded by V and by antichain sanity"
      arb_dag_params (fun p ->
        let g = build_dag p in
        let w = Width.exact g in
        w >= 1 && w <= Taskgraph.num_tasks g);
    qtest ~count:100 "ready bound within [level bound, exact] for positive costs"
      arb_dag_params (fun p ->
        (* rebuild with strictly positive computation costs so the interval
           argument of max_ready_bound applies *)
        let g0 = build_dag p in
        let comp = Array.init (Taskgraph.num_tasks g0) (fun _ -> 1.0) in
        let edges = ref [] in
        Taskgraph.iter_edges (fun s d w -> edges := (s, d, w) :: !edges) g0;
        let g = Taskgraph.of_arrays ~comp ~edges:(Array.of_list !edges) in
        let rb = Width.max_ready_bound g in
        rb >= 1 && rb <= Width.exact g);
  ]

let suite =
  [
    Alcotest.test_case "known widths" `Quick test_known_widths;
    Alcotest.test_case "tree widths" `Quick test_out_tree_width;
    Alcotest.test_case "level widths" `Quick test_level_width_known;
    Alcotest.test_case "ready bounds" `Quick test_ready_bound_known;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
