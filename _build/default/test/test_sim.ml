open! Flb_taskgraph
open! Flb_platform
open! Flb_sim
open Testutil

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  Event_queue.add q ~time:1.0 "a2";
  check_int "length" 4 (Event_queue.length q);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.0) (Event_queue.peek_time q);
  let drained = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, x) ->
      drained := x :: !drained;
      drain ()
    | None -> ()
  in
  drain ();
  (* FIFO among equal timestamps *)
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b"; "c" ] (List.rev !drained);
  check_bool "empty" true (Event_queue.is_empty q)

let test_event_queue_errors () =
  let q = Event_queue.create () in
  check_raises_invalid "negative time" (fun () -> Event_queue.add q ~time:(-1.0) ());
  check_raises_invalid "nan time" (fun () -> Event_queue.add q ~time:Float.nan ())

let test_replay_fig1 () =
  let g = Example.fig1 () in
  let s = Flb_core.Flb.run g (Machine.clique ~num_procs:2) in
  match Simulator.run s with
  | Error _ -> Alcotest.fail "replay failed"
  | Ok o ->
    check_float "makespan" 14.0 o.Simulator.makespan;
    check_bool "agrees" true (Simulator.agrees_with_schedule s o);
    (* Cross-processor messages in the Table 1 schedule: t0->t1, t1->t5,
       t2->t6, t4->t7, t6->t7 cross; t0->t2, t0->t3, t3->t5, t5->t7 are
       local; t1->t4 is local on p1. *)
    check_int "messages" 5 o.Simulator.messages

let test_incomplete_schedule () =
  let g = small_graph () in
  let s = Schedule.create g (Machine.clique ~num_procs:2) in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  match Simulator.run s with
  | Error (Simulator.Incomplete_schedule missing) ->
    check_int "three tasks missing" 3 (List.length missing)
  | _ -> Alcotest.fail "expected Incomplete_schedule"

let test_deadlock_detection () =
  (* chain a -> b with both tasks on one processor but ordered b before a:
     the replay must report a deadlock, not hang or invent times *)
  let g = Taskgraph.of_arrays ~comp:[| 1.0; 1.0 |] ~edges:[| (0, 1, 1.0) |] in
  let m = Machine.clique ~num_procs:1 in
  match
    Simulator.replay_placement g m ~proc_of:(fun _ -> 0) ~order_on:(fun _ -> [ 1; 0 ])
  with
  | Error (Simulator.Deadlock stuck) ->
    check_bool "both stuck" true (List.length stuck = 2)
  | _ -> Alcotest.fail "expected Deadlock"

let test_bad_placement () =
  let g = small_graph () in
  let m = Machine.clique ~num_procs:2 in
  match
    Simulator.replay_placement g m ~proc_of:(fun t -> if t = 2 then 7 else 0)
      ~order_on:(fun _ -> [])
  with
  | Error (Simulator.Incomplete_schedule [ 2 ]) -> ()
  | _ -> Alcotest.fail "expected Incomplete_schedule [2]"

let test_comm_volume () =
  (* two tasks on different processors, one edge of cost 5 *)
  let g = Taskgraph.of_arrays ~comp:[| 1.0; 1.0 |] ~edges:[| (0, 1, 5.0) |] in
  let m = Machine.clique ~num_procs:2 in
  let s = Schedule.create g m in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  Schedule.assign s 1 ~proc:1 ~start:6.0;
  match Simulator.run s with
  | Ok o ->
    check_int "one message" 1 o.Simulator.messages;
    check_float "volume" 5.0 o.Simulator.comm_volume;
    check_float "makespan" 7.0 o.Simulator.makespan
  | Error _ -> Alcotest.fail "replay failed"

let test_contention_serializes_sends () =
  (* one producer fans out to three consumers on three other processors;
     with one port the three messages of cost 4 leave back to back *)
  let g =
    Taskgraph.of_arrays
      ~comp:[| 1.0; 1.0; 1.0; 1.0 |]
      ~edges:[| (0, 1, 4.0); (0, 2, 4.0); (0, 3, 4.0) |]
  in
  let m = Machine.clique ~num_procs:4 in
  let s = Schedule.create g m in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  Schedule.assign s 1 ~proc:1 ~start:5.0;
  Schedule.assign s 2 ~proc:2 ~start:5.0;
  Schedule.assign s 3 ~proc:3 ~start:5.0;
  (match Simulator.run s with
  | Ok o -> check_float "free: all arrive at 5" 6.0 o.Simulator.makespan
  | Error _ -> Alcotest.fail "free replay failed");
  (match Simulator.run ~send_ports:1 s with
  | Ok o ->
    (* departures at 1, 5, 9 -> last arrival 13, finish 14 *)
    check_float "1 port serializes" 14.0 o.Simulator.makespan
  | Error _ -> Alcotest.fail "1-port replay failed");
  (match Simulator.run ~send_ports:2 s with
  | Ok o ->
    (* departures at 1, 1, 5 -> last arrival 9, finish 10 *)
    check_float "2 ports" 10.0 o.Simulator.makespan
  | Error _ -> Alcotest.fail "2-port replay failed");
  check_raises_invalid "0 ports rejected" (fun () ->
      ignore (Simulator.run ~send_ports:0 s))

(* The central cross-check: every scheduler's claimed schedule replays in
   the discrete-event machine with identical start times (work-conserving
   schedulers) or not-later starts (insertion). *)
let all_work_conserving (g : Taskgraph.t) m =
  List.map
    (fun (a : Flb_experiments.Registry.t) -> (a.name, a.run g m))
    Flb_experiments.Registry.extended_set

let qsuite =
  [
    qtest ~count:100 "every scheduler's output replays exactly"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let m = Machine.clique ~num_procs:procs in
        List.for_all
          (fun (_name, s) ->
            match Simulator.run s with
            | Ok o -> Simulator.agrees_with_schedule s o
            | Error _ -> false)
          (all_work_conserving g m));
    qtest ~count:100 "contention never speeds anything up" arb_scheduling_case
      (fun (p, procs) ->
        let g = build_dag p in
        let m = Machine.clique ~num_procs:procs in
        let s = Flb_core.Flb.run g m in
        match (Simulator.run s, Simulator.run ~send_ports:1 s, Simulator.run ~send_ports:2 s) with
        | Ok free, Ok one, Ok two ->
          one.Simulator.makespan >= two.Simulator.makespan -. 1e-9
          && two.Simulator.makespan >= free.Simulator.makespan -. 1e-9
        | _ -> false);
    qtest ~count:100 "insertion MCP replays no later than claimed"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let m = Machine.clique ~num_procs:procs in
        let s = Flb_schedulers.Mcp.run ~insertion:true g m in
        match Simulator.run s with
        | Ok o ->
          o.Simulator.makespan <= Schedule.makespan s +. 1e-9
          && Array.for_all Fun.id
               (Array.init (Taskgraph.num_tasks g) (fun t ->
                    o.Simulator.start.(t) <= Schedule.start_time s t +. 1e-9))
        | Error _ -> false);
  ]

let suite =
  [
    Alcotest.test_case "event queue order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue errors" `Quick test_event_queue_errors;
    Alcotest.test_case "replay fig1" `Quick test_replay_fig1;
    Alcotest.test_case "incomplete schedule" `Quick test_incomplete_schedule;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "bad placement" `Quick test_bad_placement;
    Alcotest.test_case "comm volume" `Quick test_comm_volume;
    Alcotest.test_case "send-port contention" `Quick test_contention_serializes_sends;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
