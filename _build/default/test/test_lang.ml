open! Flb_taskgraph
open! Flb_lang
open Testutil

let test_combinators () =
  let p =
    Program.seq ~comm:2.0
      [
        Program.task ~label:"load" ~cost:4.0 ();
        Program.par
          [
            Program.task ~cost:1.0 ();
            Program.task ~cost:1.0 ();
            Program.seq [ Program.task ~cost:1.0 (); Program.task ~cost:2.0 () ];
          ];
        Program.task ~label:"join" ~cost:0.5 ();
      ]
  in
  check_int "num_tasks" 6 (Program.num_tasks p);
  let g = Program.compile p in
  check_int "compiled tasks" 6 (Taskgraph.num_tasks g);
  (* load -> {a, b, c}: 3 edges; inner c -> d: 1; {a, b, d} -> join: 3 *)
  check_int "edges" 7 (Taskgraph.num_edges g);
  check_int "one entry" 1 (List.length (Taskgraph.entry_tasks g));
  check_int "one exit" 1 (List.length (Taskgraph.exit_tasks g));
  Alcotest.(check (list (pair int string))) "labels" [ (0, "load"); (5, "join") ]
    (Program.labels p);
  (* the seq junction carries comm 2 *)
  Alcotest.(check (option (float 1e-9))) "comm" (Some 2.0) (Taskgraph.comm g ~src:0 ~dst:1)

let test_combinator_errors () =
  check_raises_invalid "negative cost" (fun () ->
      ignore (Program.task ~cost:(-1.0) ()));
  check_raises_invalid "empty seq" (fun () -> ignore (Program.seq []));
  check_raises_invalid "empty par" (fun () -> ignore (Program.par []));
  check_raises_invalid "bad comm" (fun () ->
      ignore (Program.seq ~comm:Float.nan [ Program.task ~cost:1.0 () ]))

let test_pipeline_replicate () =
  let p = Program.pipeline 4 (fun i -> Program.task ~cost:(float_of_int (i + 1)) ()) in
  check_int "pipeline tasks" 4 (Program.num_tasks p);
  let g = Program.compile p in
  check_int "pipeline edges" 3 (Taskgraph.num_edges g);
  check_float "pipeline work" 10.0 (Taskgraph.total_comp g);
  let r = Program.replicate 5 (fun _ -> Program.task ~cost:2.0 ()) in
  check_int "replicate edges" 0 (Taskgraph.num_edges (Program.compile r))

let test_parse_example () =
  let g =
    Parse.graph_of_string
      "; demo\n(seq :comm 2.5 (task load 4) (par (task 1) (task 1) (seq (task 1) (task 2))) (task join 0.5))"
  in
  check_int "tasks" 6 (Taskgraph.num_tasks g);
  check_int "edges" 7 (Taskgraph.num_edges g);
  Alcotest.(check (option (float 1e-9))) "comm" (Some 2.5) (Taskgraph.comm g ~src:0 ~dst:1)

let expect_parse_error input =
  match Parse.program_of_string input with
  | exception Parse.Parse_error _ -> ()
  | _ -> Alcotest.failf "accepted %S" (String.escaped input)

let test_parse_errors () =
  expect_parse_error "";
  expect_parse_error "(";
  expect_parse_error ")";
  expect_parse_error "task";
  expect_parse_error "(task)";
  expect_parse_error "(task a b c)";
  expect_parse_error "(task -1)";
  expect_parse_error "(seq)";
  expect_parse_error "(par)";
  expect_parse_error "(seq :comm)";
  expect_parse_error "(frobnicate (task 1))";
  expect_parse_error "(task 1) (task 2)" (* trailing input *)

let test_parse_error_position () =
  match Parse.program_of_string "(seq (task 1) (bogus))" with
  | exception Parse.Parse_error { position; _ } -> check_int "position" 14 position
  | _ -> Alcotest.fail "accepted bogus form"

let test_compiled_program_schedules () =
  (* end to end: text -> graph -> FLB -> valid schedule *)
  let g =
    Parse.graph_of_string
      "(seq (task src 1) (par (seq (task 2) (task 2)) (task 5) (task 3)) (task sink 1))"
  in
  let s = Flb_core.Flb.run g (Flb_platform.Machine.clique ~num_procs:3) in
  Alcotest.(check (result unit (list string))) "valid" (Ok ())
    (Flb_platform.Schedule.validate s)

let qsuite =
  let arb_program =
    (* random series-parallel programs via a recursive generator *)
    let open QCheck.Gen in
    let rec gen depth =
      if depth = 0 then
        map (fun c -> Program.task ~cost:(float_of_int c) ()) (int_range 0 9)
      else
        frequency
          [
            (2, map (fun c -> Program.task ~cost:(float_of_int c) ()) (int_range 0 9));
            ( 2,
              map2
                (fun comm parts -> Program.seq ~comm:(float_of_int comm) parts)
                (int_range 0 5)
                (list_size (int_range 1 4) (gen (depth - 1))) );
            (2, map Program.par (list_size (int_range 1 4) (gen (depth - 1))));
          ]
    in
    QCheck.make
      ~print:(fun p -> Printf.sprintf "<program of %d tasks>" (Program.num_tasks p))
      (gen 4)
  in
  [
    qtest ~count:200 "print/parse round-trips to the same graph" arb_program
      (fun p ->
        let p' = Parse.program_of_string (Parse.to_string p) in
        let a = Program.compile p and b = Program.compile p' in
        Taskgraph.num_tasks a = Taskgraph.num_tasks b
        && Taskgraph.num_edges a = Taskgraph.num_edges b
        &&
        let ok = ref true in
        Taskgraph.iter_edges
          (fun s d w -> if Taskgraph.comm b ~src:s ~dst:d <> Some w then ok := false)
          a;
        !ok);
    qtest ~count:200 "compiled programs are valid DAGs of the declared size"
      arb_program (fun p ->
        let g = Program.compile p in
        Taskgraph.num_tasks g = Program.num_tasks p
        && Topo.is_topological g (Topo.order g));
    qtest ~count:100 "compiled programs schedule validly" arb_program (fun p ->
        let g = Program.compile p in
        let m = Flb_platform.Machine.clique ~num_procs:3 in
        Flb_platform.Schedule.validate (Flb_core.Flb.run g m) = Ok ());
  ]

let suite =
  [
    Alcotest.test_case "combinators" `Quick test_combinators;
    Alcotest.test_case "combinator errors" `Quick test_combinator_errors;
    Alcotest.test_case "pipeline/replicate" `Quick test_pipeline_replicate;
    Alcotest.test_case "parse example" `Quick test_parse_example;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error position" `Quick test_parse_error_position;
    Alcotest.test_case "program schedules end to end" `Quick
      test_compiled_program_schedules;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
