open Testutil
module Int_heap = Flb_heap.Binary_heap.Make (Int)
module Int_pairing = Flb_heap.Pairing_heap.Make (Int)
module Indexed_heap = Flb_heap.Indexed_heap

(* --- Binary_heap --- *)

let test_binary_basic () =
  let h = Int_heap.create () in
  check_bool "empty" true (Int_heap.is_empty h);
  List.iter (Int_heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  check_int "length" 6 (Int_heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Int_heap.min_elt h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 3; 5; 8; 9 ] (Int_heap.drain h);
  check_bool "empty after drain" true (Int_heap.is_empty h)

let test_binary_pop_exn () =
  let h = Int_heap.create () in
  check_raises_invalid "pop_exn empty" (fun () -> ignore (Int_heap.pop_exn h));
  Int_heap.add h 4;
  check_int "pop_exn" 4 (Int_heap.pop_exn h)

let test_binary_of_array () =
  let h = Int_heap.of_array [| 4; 2; 7; 1 |] in
  Alcotest.(check (list int)) "heapified" [ 1; 2; 4; 7 ] (Int_heap.drain h)

(* --- Pairing_heap --- *)

let test_pairing_basic () =
  let h = Int_pairing.of_list [ 5; 1; 3 ] in
  Alcotest.(check (option int)) "min" (Some 1) (Int_pairing.min_elt h);
  check_int "length" 3 (Int_pairing.length h);
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ] (Int_pairing.to_sorted_list h);
  (* persistence: the original heap is unchanged by pop *)
  (match Int_pairing.pop h with
  | Some (x, rest) ->
    check_int "popped min" 1 x;
    check_int "rest length" 2 (Int_pairing.length rest)
  | None -> Alcotest.fail "pop on non-empty");
  check_int "original untouched" 3 (Int_pairing.length h)

let test_pairing_merge () =
  let a = Int_pairing.of_list [ 4; 6 ] and b = Int_pairing.of_list [ 1; 9 ] in
  Alcotest.(check (list int)) "merge" [ 1; 4; 6; 9 ]
    (Int_pairing.to_sorted_list (Int_pairing.merge a b))

(* --- Indexed_heap --- *)

let test_indexed_basic () =
  let h = Indexed_heap.create ~universe:10 ~compare:Float.compare in
  Indexed_heap.add h ~elt:3 ~key:5.0;
  Indexed_heap.add h ~elt:7 ~key:1.0;
  Indexed_heap.add h ~elt:2 ~key:3.0;
  check_int "length" 3 (Indexed_heap.length h);
  check_bool "mem" true (Indexed_heap.mem h 7);
  check_bool "not mem" false (Indexed_heap.mem h 0);
  (match Indexed_heap.min_elt h with
  | Some (e, k) ->
    check_int "min elt" 7 e;
    check_float "min key" 1.0 k
  | None -> Alcotest.fail "min on non-empty");
  Indexed_heap.remove h 7;
  (match Indexed_heap.min_elt h with
  | Some (e, _) -> check_int "min after remove" 2 e
  | None -> Alcotest.fail "min after remove");
  Indexed_heap.update h ~elt:3 ~key:0.5;
  (match Indexed_heap.min_elt h with
  | Some (e, _) -> check_int "min after decrease" 3 e
  | None -> Alcotest.fail "min after decrease")

let test_indexed_errors () =
  let h = Indexed_heap.create ~universe:4 ~compare:Float.compare in
  Indexed_heap.add h ~elt:1 ~key:1.0;
  check_raises_invalid "duplicate add" (fun () -> Indexed_heap.add h ~elt:1 ~key:2.0);
  check_raises_invalid "out of universe" (fun () -> Indexed_heap.add h ~elt:4 ~key:1.0);
  (match Indexed_heap.key h 0 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "key of absent element");
  Indexed_heap.remove h 3 (* no-op, absent *);
  check_int "length unchanged" 1 (Indexed_heap.length h)

let test_indexed_tie_break_by_id () =
  let h = Indexed_heap.create ~universe:5 ~compare:Float.compare in
  Indexed_heap.add h ~elt:4 ~key:1.0;
  Indexed_heap.add h ~elt:1 ~key:1.0;
  Indexed_heap.add h ~elt:2 ~key:1.0;
  match Indexed_heap.min_elt h with
  | Some (e, _) -> check_int "lowest id wins ties" 1 e
  | None -> Alcotest.fail "min"

(* Random operation sequences checked against a simple association-map
   model; this is the FLB workhorse so it gets the heaviest property. *)
let qsuite =
  let arb_ops =
    QCheck.(
      pair (int_range 1 60)
        (list (pair (int_range 0 2) (pair (int_range 0 300) (float_range 0.0 100.0)))))
  in
  [
    qtest ~count:300 "indexed heap agrees with map model" arb_ops
      (fun (universe, ops) ->
        let h = Indexed_heap.create ~universe ~compare:Float.compare in
        let model = Hashtbl.create 16 in
        List.iter
          (fun (op, (raw, key)) ->
            let e = raw mod universe in
            match op with
            | 0 ->
              if not (Indexed_heap.mem h e) then begin
                Indexed_heap.add h ~elt:e ~key;
                Hashtbl.replace model e key
              end
            | 1 ->
              Indexed_heap.update h ~elt:e ~key;
              Hashtbl.replace model e key
            | _ ->
              Indexed_heap.remove h e;
              Hashtbl.remove model e)
          ops;
        let model_min =
          Hashtbl.fold
            (fun e k best ->
              match best with
              | Some (be, bk) when (bk, be) <= (k, e) -> best
              | _ -> Some (e, k))
            model None
        in
        Indexed_heap.length h = Hashtbl.length model
        && Indexed_heap.min_elt h = model_min
        &&
        let sorted = Indexed_heap.to_sorted_list h in
        List.length sorted = Hashtbl.length model
        && List.for_all (fun (e, k) -> Hashtbl.find_opt model e = Some k) sorted
        && sorted = List.sort (fun (e1, k1) (e2, k2) -> compare (k1, e1) (k2, e2)) sorted);
    qtest "binary heap drain equals sort" QCheck.(list int) (fun l ->
        let h = Int_heap.create () in
        List.iter (Int_heap.add h) l;
        Int_heap.drain h = List.sort compare l);
    qtest "pairing heap sorts" QCheck.(list int) (fun l ->
        Int_pairing.to_sorted_list (Int_pairing.of_list l) = List.sort compare l);
    qtest "binary and pairing heaps agree" QCheck.(list int) (fun l ->
        let b = Int_heap.create () in
        List.iter (Int_heap.add b) l;
        Int_heap.drain b = Int_pairing.to_sorted_list (Int_pairing.of_list l));
  ]

let suite =
  [
    Alcotest.test_case "binary: basic" `Quick test_binary_basic;
    Alcotest.test_case "binary: pop_exn" `Quick test_binary_pop_exn;
    Alcotest.test_case "binary: of_array" `Quick test_binary_of_array;
    Alcotest.test_case "pairing: basic/persistence" `Quick test_pairing_basic;
    Alcotest.test_case "pairing: merge" `Quick test_pairing_merge;
    Alcotest.test_case "indexed: basic" `Quick test_indexed_basic;
    Alcotest.test_case "indexed: errors" `Quick test_indexed_errors;
    Alcotest.test_case "indexed: id tie-break" `Quick test_indexed_tie_break_by_id;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
