(* The mesh-machine extension: topology-aware latencies, feasibility of
   every scheduler off the uniform model, and the boundary of Theorem 3. *)

open! Flb_taskgraph
open! Flb_platform
open Testutil

let test_mesh_geometry () =
  let m = Machine.mesh ~rows:2 ~cols:3 in
  check_int "procs" 6 (Machine.num_procs m);
  check_bool "not uniform" false (Machine.is_uniform m);
  check_bool "clique uniform" true (Machine.is_uniform (Machine.clique ~num_procs:8));
  check_bool "1x2 mesh is uniform" true (Machine.is_uniform (Machine.mesh ~rows:1 ~cols:2));
  (* processor i at (i/3, i mod 3): 0=(0,0), 5=(1,2): 1+2 = 3 hops *)
  check_float "corner to corner" 9.0 (Machine.comm_time m ~src:0 ~dst:5 ~cost:3.0);
  check_float "neighbours" 3.0 (Machine.comm_time m ~src:0 ~dst:1 ~cost:3.0);
  check_float "local" 0.0 (Machine.comm_time m ~src:4 ~dst:4 ~cost:3.0);
  check_float "symmetric" (Machine.comm_time m ~src:5 ~dst:0 ~cost:3.0)
    (Machine.comm_time m ~src:0 ~dst:5 ~cost:3.0);
  check_raises_invalid "bad dims" (fun () -> ignore (Machine.mesh ~rows:0 ~cols:3))

let test_emt_is_topology_aware () =
  let g = small_graph () in
  let m = Machine.mesh ~rows:1 ~cols:3 in
  let s = Schedule.create g m in
  Schedule.assign s 0 ~proc:0 ~start:0.0;
  (* edge (0, 2) costs 4: one hop to p1 -> 2+4 = 6; two hops to p2 -> 10 *)
  check_float "one hop" 6.0 (Schedule.emt s 2 ~proc:1);
  check_float "two hops" 10.0 (Schedule.emt s 2 ~proc:2);
  check_float "local" 2.0 (Schedule.emt s 2 ~proc:0)

let test_theorem3_exact_on_clique_only () =
  let g = Example.fig1 () in
  (match Flb_core.Flb_check.run_checked g (Machine.clique ~num_procs:4) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "Theorem 3 must hold on the clique");
  let _, report = Flb_core.Flb_check.measure g (Machine.clique ~num_procs:4) in
  check_int "no suboptimal steps on clique" 0
    report.Flb_core.Flb_check.suboptimal_steps;
  check_float "ratio 1 on clique" 1.0 report.Flb_core.Flb_check.max_ratio

let test_simulator_agrees_on_mesh () =
  let g = Example.fig1 () in
  let m = Machine.mesh ~rows:2 ~cols:2 in
  let s = Flb_core.Flb.run g m in
  (match Schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid on mesh: %s" (String.concat "; " es));
  match Flb_sim.Simulator.run s with
  | Ok o ->
    check_bool "replay may only be earlier" true
      (o.Flb_sim.Simulator.makespan <= Schedule.makespan s +. 1e-9)
  | Error _ -> Alcotest.fail "mesh replay failed"

(* Negative control: [measure] must actually detect suboptimal steps on a
   non-uniform machine (a vacuously-zero implementation would also pass
   the clique tests). Deterministic instance, so this is stable. *)
let test_measure_detects_mesh_suboptimality () =
  let w = Flb_experiments.Workload_suite.lu ~tasks:150 () in
  let g = Flb_experiments.Workload_suite.instance w ~ccr:5.0 ~seed:1 in
  let _, r = Flb_core.Flb_check.measure g (Machine.mesh ~rows:2 ~cols:4) in
  check_bool "suboptimal steps found on the mesh" true
    (r.Flb_core.Flb_check.suboptimal_steps > 0);
  check_bool "worst ratio exceeds 1" true (r.Flb_core.Flb_check.max_ratio > 1.0)

let mesh_machines = [ Machine.mesh ~rows:2 ~cols:2; Machine.mesh ~rows:1 ~cols:5 ]

let qsuite =
  [
    qtest ~count:100 "every scheduler stays valid on meshes" arb_dag_params
      (fun p ->
        let g = build_dag p in
        List.for_all
          (fun m ->
            List.for_all
              (fun (a : Flb_experiments.Registry.t) ->
                Schedule.validate (a.run g m) = Ok ())
              Flb_experiments.Registry.paper_set)
          mesh_machines);
    qtest ~count:100 "duplication schedulers stay valid on meshes" arb_dag_params
      (fun p ->
        let g = build_dag p in
        List.for_all
          (fun m ->
            Flb_duplication.Dup_schedule.validate (Flb_duplication.Dsh.run g m) = Ok ()
            && Flb_duplication.Dup_schedule.validate (Flb_duplication.Cpfd.run g m)
               = Ok ())
          mesh_machines);
    qtest ~count:150 "Theorem 3 (zero suboptimal steps) on cliques via measure"
      arb_scheduling_case (fun (p, procs) ->
        let g = build_dag p in
        let _, r = Flb_core.Flb_check.measure g (Machine.clique ~num_procs:procs) in
        r.Flb_core.Flb_check.suboptimal_steps = 0);
    qtest ~count:100 "mesh simulator replay never later than analytic"
      arb_dag_params (fun p ->
        let g = build_dag p in
        List.for_all
          (fun m ->
            let s = Flb_core.Flb.run g m in
            match Flb_sim.Simulator.run s with
            | Ok o -> o.Flb_sim.Simulator.makespan <= Schedule.makespan s +. 1e-9
            | Error _ -> false)
          mesh_machines);
  ]

let suite =
  [
    Alcotest.test_case "mesh geometry" `Quick test_mesh_geometry;
    Alcotest.test_case "EMT is topology aware" `Quick test_emt_is_topology_aware;
    Alcotest.test_case "Theorem 3 boundary" `Quick test_theorem3_exact_on_clique_only;
    Alcotest.test_case "measure detects mesh suboptimality" `Quick
      test_measure_detects_mesh_suboptimality;
    Alcotest.test_case "simulator on mesh" `Quick test_simulator_agrees_on_mesh;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
