open! Flb_taskgraph
open! Flb_prelude
open Testutil
module W = Flb_workloads

let test_lu_counts () =
  check_int "n=2" 2 (W.Lu.num_tasks ~matrix_size:2);
  check_int "n=5" 14 (W.Lu.num_tasks ~matrix_size:5);
  let g = W.Lu.structure ~matrix_size:5 in
  check_int "structure count" 14 (Taskgraph.num_tasks g);
  check_int "paper scale" 63 (W.Lu.matrix_size_for_tasks 2000);
  check_int "paper task count" 2015 (W.Lu.num_tasks ~matrix_size:63);
  check_raises_invalid "n too small" (fun () -> ignore (W.Lu.structure ~matrix_size:1))

let test_lu_shape () =
  let g = W.Lu.structure ~matrix_size:4 in
  (* one entry (first pivot), one exit (last update) *)
  check_int "one entry" 1 (List.length (Taskgraph.entry_tasks g));
  check_int "one exit" 1 (List.length (Taskgraph.exit_tasks g));
  (* depth alternates pivot/update: 2(n-1) levels *)
  check_int "levels" 6 (Topo.num_levels g)

let test_laplace () =
  let g = W.Laplace.structure ~grid:3 ~sweeps:2 in
  check_int "count" 18 (Taskgraph.num_tasks g);
  (* second sweep centre cell has 5 predecessors, corner has 3 *)
  let centre = 9 + 4 and corner = 9 in
  check_int "centre preds" 5 (Taskgraph.in_degree g centre);
  check_int "corner preds" 3 (Taskgraph.in_degree g corner);
  check_int "levels = sweeps" 2 (Topo.num_levels g);
  let grid, sweeps = W.Laplace.dims_for_tasks 2000 in
  check_bool "paper scale" true (grid * grid * sweeps >= 2000)

let test_stencil () =
  let g = W.Stencil.structure ~width:4 ~layers:3 in
  check_int "count" 12 (Taskgraph.num_tasks g);
  check_int "levels" 3 (Topo.num_levels g);
  check_int "width equals row" 4 (Width.exact g);
  (* interior cell reads 3 neighbours, border cell 2 *)
  check_int "interior preds" 3 (Taskgraph.in_degree g 5);
  check_int "border preds" 2 (Taskgraph.in_degree g 4)

let test_fft () =
  check_raises_invalid "not a power of two" (fun () ->
      ignore (W.Fft.structure ~points:6));
  let g = W.Fft.structure ~points:8 in
  check_int "count 8*(3+1)" 32 (Taskgraph.num_tasks g);
  check_int "levels" 4 (Topo.num_levels g);
  check_int "entries" 8 (List.length (Taskgraph.entry_tasks g));
  check_int "exits" 8 (List.length (Taskgraph.exit_tasks g));
  (* every non-input task has exactly two predecessors *)
  let ok = ref true in
  for t = 8 to 31 do
    if Taskgraph.in_degree g t <> 2 then ok := false
  done;
  check_bool "butterfly in-degrees" true !ok;
  check_int "paper scale" 256 (W.Fft.points_for_tasks 2000)

let test_cholesky () =
  check_int "1 tile" 1 (W.Cholesky.num_tasks ~tiles:1);
  (* 2 tiles: potrf0, trsm(1,0), syrk(1,0), potrf1 *)
  check_int "2 tiles" 4 (W.Cholesky.num_tasks ~tiles:2);
  let g = W.Cholesky.structure ~tiles:4 in
  check_int "structure matches count" (W.Cholesky.num_tasks ~tiles:4)
    (Taskgraph.num_tasks g);
  check_int "one entry (first potrf)" 1 (List.length (Taskgraph.entry_tasks g));
  check_int "one exit (last potrf)" 1 (List.length (Taskgraph.exit_tasks g));
  check_bool "paper scale" true
    (W.Cholesky.num_tasks ~tiles:(W.Cholesky.tiles_for_tasks 2000) >= 2000);
  (* valid input to the schedulers end to end *)
  let s = Flb_core.Flb.run g (Flb_platform.Machine.clique ~num_procs:4) in
  check_bool "schedules validly" true (Flb_platform.Schedule.validate s = Ok ())

let test_gauss () =
  let g = W.Gauss.structure ~matrix_size:4 in
  check_int "count" 9 (Taskgraph.num_tasks g);
  check_int "one entry" 1 (List.length (Taskgraph.entry_tasks g))

let test_shapes () =
  check_int "chain levels" 7 (Topo.num_levels (W.Shapes.chain ~length:7));
  check_int "independent edges" 0 (Taskgraph.num_edges (W.Shapes.independent ~tasks:5));
  let fj = W.Shapes.fork_join ~branches:3 ~stages:2 in
  check_int "fork-join tasks" 9 (Taskgraph.num_tasks fj);
  let ot = W.Shapes.out_tree ~branching:3 ~depth:2 in
  check_int "out-tree tasks" 13 (Taskgraph.num_tasks ot);
  check_int "out-tree entries" 1 (List.length (Taskgraph.entry_tasks ot));
  let it = W.Shapes.in_tree ~branching:3 ~depth:2 in
  check_int "in-tree exits" 1 (List.length (Taskgraph.exit_tasks it));
  let d = W.Shapes.diamond ~size:3 in
  check_int "diamond tasks" 9 (Taskgraph.num_tasks d);
  check_int "diamond levels" 5 (Topo.num_levels d);
  let pc = W.Shapes.parallel_chains ~count:4 ~length:6 in
  check_int "parallel chains tasks" 24 (Taskgraph.num_tasks pc);
  check_int "parallel chains width" 4 (Width.exact pc);
  check_int "parallel chains entries" 4 (List.length (Taskgraph.entry_tasks pc))

let test_weights_distributions () =
  let rng = Rng.create ~seed:5 in
  check_float "constant" 2.5 (W.Weights.sample W.Weights.Constant rng ~mean:2.5);
  for _ = 1 to 100 do
    let u = W.Weights.sample W.Weights.Uniform rng ~mean:2.0 in
    check_bool "uniform bounds" true (u >= 0.0 && u < 4.0);
    let e = W.Weights.sample W.Weights.Exponential rng ~mean:2.0 in
    check_bool "exponential non-negative" true (e >= 0.0)
  done

let test_weights_ccr_targeting () =
  let structure = W.Stencil.structure ~width:20 ~layers:20 in
  List.iter
    (fun target ->
      let rng = Rng.create ~seed:1 in
      let g = W.Weights.assign structure ~rng ~ccr:target in
      let achieved = Taskgraph.ccr g in
      check_bool
        (Printf.sprintf "ccr %.1f achieved %.3f" target achieved)
        true
        (Float.abs (achieved -. target) /. target < 0.2))
    [ 0.2; 1.0; 5.0 ]

let test_weights_preserve_structure () =
  let s = small_graph () in
  let rng = Rng.create ~seed:3 in
  let g = W.Weights.assign s ~rng ~ccr:2.0 in
  check_int "tasks preserved" 4 (Taskgraph.num_tasks g);
  check_int "edges preserved" 4 (Taskgraph.num_edges g);
  check_bool "edge set preserved" true (Taskgraph.comm g ~src:0 ~dst:2 <> None)

let test_scale_comm () =
  let g = W.Weights.scale_comm (small_graph ()) ~factor:2.0 in
  Alcotest.(check (option (float 1e-9))) "scaled" (Some 8.0)
    (Taskgraph.comm g ~src:0 ~dst:2);
  check_float "comp untouched" 2.0 (Taskgraph.comp g 0)

let test_random_dag_params () =
  check_raises_invalid "bad widths" (fun () ->
      ignore
        (W.Random_dag.layered ~rng:(Rng.create ~seed:0) ~layers:2 ~min_width:3
           ~max_width:2 ~edge_probability:0.5));
  check_raises_invalid "bad probability" (fun () ->
      ignore (W.Random_dag.gnp ~rng:(Rng.create ~seed:0) ~tasks:5 ~edge_probability:1.5))

let qsuite =
  [
    qtest ~count:50 "layered DAGs have requested depth"
      (QCheck.make
         ~print:(fun (l, w, s) -> Printf.sprintf "layers=%d width=%d seed=%d" l w s)
         QCheck.Gen.(triple (int_range 1 8) (int_range 1 5) (int_range 0 1000)))
      (fun (layers, w, seed) ->
        let rng = Rng.create ~seed in
        let g =
          W.Random_dag.layered ~rng ~layers ~min_width:1 ~max_width:w
            ~edge_probability:0.3
        in
        Topo.num_levels g = layers);
    qtest ~count:50 "gnp graphs are valid DAGs"
      (QCheck.make
         ~print:(fun (n, s) -> Printf.sprintf "tasks=%d seed=%d" n s)
         QCheck.Gen.(pair (int_range 1 40) (int_range 0 1000)))
      (fun (tasks, seed) ->
        let rng = Rng.create ~seed in
        let g = W.Random_dag.gnp ~rng ~tasks ~edge_probability:0.3 in
        Topo.is_topological g (Topo.order g));
  ]

let suite =
  [
    Alcotest.test_case "LU counts" `Quick test_lu_counts;
    Alcotest.test_case "LU shape" `Quick test_lu_shape;
    Alcotest.test_case "Laplace" `Quick test_laplace;
    Alcotest.test_case "Stencil" `Quick test_stencil;
    Alcotest.test_case "FFT" `Quick test_fft;
    Alcotest.test_case "Gauss" `Quick test_gauss;
    Alcotest.test_case "Cholesky" `Quick test_cholesky;
    Alcotest.test_case "shapes" `Quick test_shapes;
    Alcotest.test_case "weight distributions" `Quick test_weights_distributions;
    Alcotest.test_case "CCR targeting" `Quick test_weights_ccr_targeting;
    Alcotest.test_case "weights preserve structure" `Quick test_weights_preserve_structure;
    Alcotest.test_case "scale_comm" `Quick test_scale_comm;
    Alcotest.test_case "random dag params" `Quick test_random_dag_params;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qsuite
