(* Shared helpers for the test suite: float assertions, a QCheck arbitrary
   over small random weighted DAGs, and the wiring from QCheck tests to
   alcotest cases. *)

open! Flb_taskgraph
open! Flb_prelude

let check_float = Alcotest.(check (float 1e-9))

let check_floatish msg = Alcotest.(check (float 1e-6)) msg

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* Parameters of a random test DAG; kept as a first-class record so QCheck
   can print failing cases usefully. *)
type dag_params = {
  layers : int;
  max_width : int;
  edge_probability : float;
  ccr : float;
  seed : int;
}

let show_dag_params p =
  Printf.sprintf "{layers=%d; max_width=%d; p=%.2f; ccr=%.2f; seed=%d}" p.layers
    p.max_width p.edge_probability p.ccr p.seed

let build_dag p =
  let rng = Rng.create ~seed:p.seed in
  let structure =
    Flb_workloads.Random_dag.layered ~rng ~layers:p.layers ~min_width:1
      ~max_width:p.max_width ~edge_probability:p.edge_probability
  in
  Flb_workloads.Weights.assign structure ~rng ~ccr:p.ccr

let gen_dag_params =
  QCheck.Gen.(
    map
      (fun (layers, max_width, ep, (ccr, seed)) ->
        { layers; max_width; edge_probability = ep; ccr; seed })
      (quad (int_range 1 7) (int_range 1 6) (float_bound_inclusive 1.0)
         (pair (float_bound_inclusive 8.0) (int_range 0 100000))))

let arb_dag_params = QCheck.make ~print:show_dag_params gen_dag_params

(* Machines of 1 to 5 processors paired with a random DAG: the shape of
   most scheduler properties. *)
let arb_scheduling_case =
  QCheck.make
    ~print:(fun (p, procs) -> Printf.sprintf "%s on %d procs" (show_dag_params p) procs)
    QCheck.Gen.(pair gen_dag_params (int_range 1 5))

let qtests_to_alcotest name qtests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) qtests)

let qtest ?(count = 200) name arb prop = QCheck.Test.make ~name ~count arb prop

(* A tiny hand-checkable graph distinct from the paper's Fig. 1:
       a(2) --1--> b(3) --2--> d(1)
       a(2) --4--> c(1) --1--> d(1)                                    *)
let small_graph () =
  Taskgraph.of_arrays
    ~comp:[| 2.0; 3.0; 1.0; 1.0 |]
    ~edges:[| (0, 1, 1.0); (0, 2, 4.0); (1, 3, 2.0); (2, 3, 1.0) |]
